"""Copy Propagation (CPP).

Pattern::

    pre_pattern:        Stmt S_i: x = y;          /* a copy */
                        Stmt S_j: opr(pos) == x;  /* S_i sole reaching def,
                                                     y unchanged between */
    primitive actions:  Modify(opr(S_j, pos), y);
    post_pattern:       Stmt S_j: opr(pos) = y;

Legality requires that ``y`` holds the same value at ``S_j`` as it did at
``S_i``; with ``S_i`` dominating every reaching path, this is equivalent
to the reaching-definition sets of ``y`` at ``S_i`` and ``S_j`` being
identical.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.incremental import AnalysisCache
from repro.core.annotations import AnnotationStore
from repro.core.history import TransformationRecord
from repro.lang.ast_nodes import (
    Assign,
    Program,
    VarRef,
    expr_at,
    exprs_equal,
    walk_expr,
)
from repro.transforms.base import (
    ApplyContext,
    Opportunity,
    ReversibilityResult,
    SafetyResult,
    Transformation,
    Violation,
    modified_after,
    stmt_deleted_after,
)
from repro.transforms.ctp import _use_paths


def _copy_def(program, cache, use_sid: int, var: str):
    """The unique copy-assignment def reaching a use, or ``None``.

    Returns ``(def_sid, source_var)`` when the sole reaching definition
    of ``var`` at ``use_sid`` is ``var = source_var`` and the reaching
    definitions of ``source_var`` are identical at both points.
    """
    df = cache.dataflow()
    defs = {d for d in df.reach_in.get(use_sid, frozenset()) if d[1] == var}
    if len(defs) != 1:
        return None
    def_sid = next(iter(defs))[0]
    if not program.is_attached(def_sid):
        return None
    stmt = program.node(def_sid)
    if not (isinstance(stmt, Assign) and isinstance(stmt.target, VarRef)
            and stmt.target.name == var and isinstance(stmt.expr, VarRef)):
        return None
    src = stmt.expr.name
    defs_src_at_def = {d for d in df.reach_in.get(def_sid, frozenset())
                       if d[1] == src}
    defs_src_at_use = {d for d in df.reach_in.get(use_sid, frozenset())
                       if d[1] == src}
    if defs_src_at_def != defs_src_at_use:
        return None
    return def_sid, src


class CopyPropagation(Transformation):
    """Replace a use of a copy by the copy's source."""

    name = "cpp"
    full_name = "Copy Propagation"
    # Derived row (not published in Table 4): propagating copies kills
    # uses (enabling DCE of the copy), exposes identical expressions
    # (CSE), can rewrite a use into a constant-defined variable (CTP),
    # and like CTP can unlock loop restructuring.
    enables = frozenset({"dce", "cse", "ctp", "cpp", "icm", "fus", "inx"})
    enables_published = False

    def find(self, program: Program, cache: AnalysisCache) -> List[Opportunity]:
        out: List[Opportunity] = []
        for s in program.walk():
            for path in _use_paths(s):
                node = expr_at(s, path)
                hit = _copy_def(program, cache, s.sid, node.name)
                if hit is None:
                    continue
                def_sid, src = hit
                if src == node.name:
                    continue
                out.append(Opportunity(
                    self.name,
                    {"def_sid": def_sid, "use_sid": s.sid, "path": path,
                     "var": node.name, "src": src},
                    f"{node.name}@S{s.sid}:{'.'.join(path)} ← {src} "
                    f"(copy at S{def_sid})"))
        return out

    def apply_actions(self, ctx: ApplyContext, opp: Opportunity) -> None:
        p = opp.params
        ctx.record.pre_pattern = {
            "def_sid": p["def_sid"], "use_sid": p["use_sid"],
            "var": p["var"], "src": p["src"], "path": p["path"],
        }
        ctx.modify(p["use_sid"], p["path"], VarRef(p["src"]))
        ctx.record.post_pattern = {
            "use_sid": p["use_sid"], "path": p["path"],
            "expr": VarRef(p["src"]),
        }

    def check_safety(self, ctx, record: TransformationRecord) -> SafetyResult:
        program, cache = ctx.program, ctx.cache
        pre = record.pre_pattern
        def_sid, use_sid = pre["def_sid"], pre["use_sid"]
        t = record.stamp
        if not program.is_attached(use_sid):
            return SafetyResult.ok()
        if not program.is_attached(def_sid):
            if ctx.deleted_by_active(def_sid, t):
                return SafetyResult.ok()  # e.g. the dead copy was DCE'd
            return SafetyResult.broken(Violation(
                f"copy definition S{def_sid} no longer exists",
                code="cpp.safety.def-deleted",
                witness={"def_sid": def_sid,
                         "pattern": "Stmt S_i: x = y"}))
        stmt = program.node(def_sid)
        if not (isinstance(stmt, Assign) and isinstance(stmt.target, VarRef)
                and stmt.target.name == pre["var"]
                and isinstance(stmt.expr, VarRef)
                and stmt.expr.name == pre["src"]):
            if ctx.attributed_to_active(def_sid, t, ("md",)):
                return SafetyResult.ok()  # e.g. CTP rewrote the copy's RHS
            return SafetyResult.broken(Violation(
                f"S{def_sid} is no longer the copy {pre['var']} = {pre['src']}",
                code="cpp.safety.def-changed",
                witness={"def_sid": def_sid, "var": pre["var"],
                         "src": pre["src"]}))
        df = cache.dataflow()
        defs = {d for d in df.reach_in.get(use_sid, frozenset())
                if d[1] == pre["var"]}
        key = (def_sid, pre["var"])
        extras = [d for d in defs - {key}
                  if not ctx.attributed_to_active(d[0], t, ("cp", "add", "mv"))]
        if extras:
            return SafetyResult.broken(Violation(
                f"S{extras[0][0]} also defines {pre['var']} reaching "
                f"S{use_sid}",
                code="cpp.safety.competing-def",
                witness={"def_sid": extras[0][0], "use_sid": use_sid,
                         "var": pre["var"]}))
        if key not in defs and not ctx.attributed_to_active(def_sid, t, ("mv",)):
            return SafetyResult.broken(Violation(
                f"S{def_sid} no longer reaches S{use_sid}",
                code="cpp.safety.def-unreaching",
                witness={"def_sid": def_sid, "use_sid": use_sid,
                         "var": pre["var"]}))
        src = pre["src"]
        at_def = {d for d in df.reach_in.get(def_sid, frozenset()) if d[1] == src}
        at_use = {d for d in df.reach_in.get(use_sid, frozenset()) if d[1] == src}
        diff = at_def ^ at_use
        unexplained = [d for d in diff
                       if not ctx.attributed_to_active(d[0], t,
                                                       ("cp", "add", "mv"))]
        if unexplained:
            return SafetyResult.broken(Violation(
                f"{src} may be redefined between S{def_sid} and S{use_sid}",
                code="cpp.safety.source-redefined",
                witness={"def_sid": def_sid, "use_sid": use_sid,
                         "source": src}))
        return SafetyResult.ok()

    def check_reversibility(self, program: Program, store: AnnotationStore,
                            record: TransformationRecord) -> ReversibilityResult:
        post = record.post_pattern
        sid, path = post["use_sid"], post["path"]
        v = stmt_deleted_after(program, store, sid, record.stamp)
        if v is not None:
            return ReversibilityResult.blocked(v)
        v = modified_after(program, store, sid, path, record.stamp)
        if v is not None:
            return ReversibilityResult.blocked(v)
        try:
            current = expr_at(program.node(sid), path)
        except KeyError:
            return ReversibilityResult.blocked(Violation(
                f"operand path {path} no longer exists on S{sid}",
                code="cpp.reversibility.path-gone",
                witness={"sid": sid, "path": list(path)}))
        if not exprs_equal(current, post["expr"]):
            return ReversibilityResult.blocked(Violation(
                f"operand at S{sid}:{'.'.join(path)} no longer matches the "
                "post pattern",
                code="cpp.reversibility.operand-mismatch",
                witness={"sid": sid, "path": list(path),
                         "pattern": "Stmt S_j: opr(pos) = y"}))
        return ReversibilityResult.ok()

    def table2_row(self) -> Dict[str, str]:
        return {
            "transformation": "Copy Propagation (CPP)",
            "pre_pattern": "Stmt S_i: x = y; Stmt S_j: opr(pos) == x;",
            "primitive_actions": "Modify(opr(S_j,pos), y);",
            "post_pattern": "Stmt S_j: opr(pos) = y;",
        }

    def table3_row(self) -> Dict[str, List[str]]:
        return {
            "safety": [
                "Delete the copy S_i",
                "Modify S_i so it is no longer the copy x = y",
                "Add/Move a definition of x or y between S_i and S_j (†)",
            ],
            "reversibility": [
                "Delete the modified statement S_j",
                "Modify the propagated operand of S_j again",
            ],
        }
