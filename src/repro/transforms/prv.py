"""Scalar Privatization (PRV).

Pattern::

    pre_pattern:        Loop L; scalar t: every iteration writes t before
                        reading it; t dead outside L;
    primitive actions:  Modify(occ(S, pos), t_prv(L.var)) for every
                        occurrence of t in L.body;
    post_pattern:       every former occurrence of t reads/writes
                        t_prv(L.var);

A scalar defined and used inside a loop carries conservative
anti/output dependences between iterations — the single memory cell is
reused — which disables PAR.  Privatization gives each iteration its
own copy by rewriting ``t`` to the subscripted ``t_prv(i)``: the
dependence analysis then sees equal-subscript array accesses (distance
0, loop-independent) and the loop becomes parallelizable.  PRV is the
enabling transformation for PAR the way constant propagation is for
dead-code elimination.

Undoing PRV collapses the private copies back into one cell, which
*reintroduces* the carried scalar dependences — so besides PAR, a later
loop interchange whose legality rested on the privatized nest is also
in its reverse-destroy set (Table 4 row ``prv``).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.incremental import AnalysisCache
from repro.core.annotations import AnnotationStore
from repro.core.history import TransformationRecord
from repro.lang.ast_nodes import (
    ArrayRef,
    Assign,
    Loop,
    Program,
    VarRef,
    expr_at,
    exprs_equal,
    stmt_defuse,
    walk_expr,
)
from repro.transforms.base import (
    ApplyContext,
    Opportunity,
    ReversibilityResult,
    SafetyResult,
    Transformation,
    Violation,
    modified_after,
    stmt_deleted_after,
)
from repro.transforms.loop_utils import subtree_stmts, var_referenced


def _private_name(var: str) -> str:
    return f"{var}_prv"


def _occurrence_paths(stmt, var: str) -> List[Tuple[str, ...]]:
    """Paths of every occurrence of scalar ``var`` in ``stmt`` (defs too)."""
    paths = []
    for slot, root in stmt.expr_slots():
        for sub_path, node in walk_expr(root):
            if isinstance(node, VarRef) and node.name == var:
                paths.append((slot,) + sub_path)
    return paths


def _privatizable(program: Program, loop: Loop) -> List[str]:
    """Scalars eligible for privatization in ``loop``, in first-def order.

    Conservative eligibility: every occurrence of the scalar sits in a
    *direct* member of the loop body (no nested control flow), the first
    referencing member writes it without reading it, and the scalar is
    dead outside the loop.
    """
    body_sids = {s.sid for s in loop.body}
    subtree_sids = {s.sid for s in subtree_stmts(loop)}
    nested_sids = subtree_sids - body_sids - {loop.sid}
    out: List[str] = []
    seen = set()
    for member in loop.body:
        du = stmt_defuse(member)
        for t in sorted(du.defs):
            if t in seen or t == loop.var:
                continue
            seen.add(t)
            if not (isinstance(member, Assign)
                    and isinstance(member.target, VarRef)
                    and member.target.name == t and t not in du.uses):
                continue  # first touching member must be a pure def of t
            # the first body member referencing t must be this def
            first = next((m for m in loop.body
                          if t in stmt_defuse(m).defs
                          or t in stmt_defuse(m).uses), None)
            if first is not member:
                continue
            if any(t in stmt_defuse(program.node(sid)).defs
                   or t in stmt_defuse(program.node(sid)).uses
                   for sid in nested_sids):
                continue  # occurrence under nested control flow
            if var_referenced(program, t, exclude_sids=subtree_sids):
                continue  # live outside the loop
            priv = _private_name(t)
            if var_referenced(program, priv, exclude_sids=set()) or any(
                    priv in stmt_defuse(program.node(sid)).array_defs
                    or priv in stmt_defuse(program.node(sid)).array_uses
                    for sid in subtree_sids if program.is_attached(sid)):
                continue  # the private name is already taken
            out.append(t)
    return out


class ScalarPrivatization(Transformation):
    """Give each loop iteration a private copy of a temporary scalar."""

    name = "prv"
    full_name = "Scalar Privatization"
    # Derived row: privatization is what makes PAR legal, and collapsing
    # the private copies back into one cell reintroduces carried scalar
    # dependences that can also invalidate a later loop interchange.
    enables = frozenset({"par", "inx"})
    enables_published = False

    def find(self, program: Program, cache: AnalysisCache) -> List[Opportunity]:
        out: List[Opportunity] = []
        for s in program.walk():
            if type(s) is not Loop:  # sequential loops only (not DOALL)
                continue
            for t in _privatizable(program, s):
                out.append(Opportunity(
                    self.name, {"loop": s.sid, "var": t},
                    f"privatize {t} in loop S{s.sid} as "
                    f"{_private_name(t)}({s.var})"))
        return out

    def apply_actions(self, ctx: ApplyContext, opp: Opportunity) -> None:
        loop_sid, var = opp.params["loop"], opp.params["var"]
        loop = ctx.program.node(loop_sid)
        priv = _private_name(var)
        occurrences: List[Tuple[int, Tuple[str, ...]]] = []
        ctx.record.pre_pattern = {
            "loop": loop_sid, "var": var, "private": priv,
            "loop_var": loop.var,
        }
        for member in list(loop.body):
            for path in _occurrence_paths(member, var):
                ctx.modify(member.sid, path,
                           ArrayRef(priv, [VarRef(loop.var)]))
                occurrences.append((member.sid, path))
        ctx.record.post_pattern = {
            "var": var, "private": priv, "loop_var": loop.var,
            "occurrences": occurrences,
        }

    def check_safety(self, ctx, record: TransformationRecord) -> SafetyResult:
        program = ctx.program
        pre = record.pre_pattern
        post = record.post_pattern
        t = record.stamp
        var, priv = pre["var"], pre["private"]
        occ_sids = {sid for sid, _path in post["occurrences"]}
        if not any(program.is_attached(sid) for sid in occ_sids):
            return SafetyResult.ok()  # every privatized statement is gone
        # the base scalar must still be dead outside the privatized
        # statements: a new reader would observe the missing final value.
        for s in program.walk():
            if s.sid in occ_sids:
                continue
            du = stmt_defuse(s)
            if var in du.defs or var in du.uses:
                if ctx.attributed_to_active(s.sid, t, ("md", "mv", "add", "cp")):
                    continue
                return SafetyResult.broken(Violation(
                    f"S{s.sid} references {var} outside the privatized loop",
                    code="prv.safety.escapes",
                    witness={"sid": s.sid, "var": var}))
            if priv in du.array_defs or priv in du.array_uses:
                if ctx.attributed_to_active(s.sid, t, ("md", "mv", "add", "cp")):
                    continue
                return SafetyResult.broken(Violation(
                    f"S{s.sid} references the private copy {priv} outside "
                    "the privatized statements",
                    code="prv.safety.private-escapes",
                    witness={"sid": s.sid, "array": priv}))
        return SafetyResult.ok()

    def check_reversibility(self, program: Program, store: AnnotationStore,
                            record: TransformationRecord) -> ReversibilityResult:
        post = record.post_pattern
        priv, loop_var = post["private"], post["loop_var"]
        expected = ArrayRef(priv, [VarRef(loop_var)])
        occ_sids = {sid for sid, _path in post["occurrences"]}
        for sid, path in post["occurrences"]:
            v = stmt_deleted_after(program, store, sid, record.stamp)
            if v is not None:
                return ReversibilityResult.blocked(v)
            v = modified_after(program, store, sid, path, record.stamp)
            if v is not None:
                return ReversibilityResult.blocked(v)
            try:
                current = expr_at(program.node(sid), path)
            except KeyError:
                return ReversibilityResult.blocked(Violation(
                    f"occurrence path {path} no longer exists on S{sid}",
                    code="prv.reversibility.path-gone",
                    witness={"sid": sid, "path": list(path)}))
            if not exprs_equal(current, expected):
                return ReversibilityResult.blocked(Violation(
                    f"occurrence at S{sid}:{'.'.join(path)} no longer "
                    f"matches {priv}({loop_var})",
                    code="prv.reversibility.occurrence-mismatch",
                    witness={"sid": sid, "path": list(path)}))
        # a statement outside the recorded occurrences referencing the
        # private copy (an unrolled duplicate, a copy) would keep reading
        # t_prv after the inverse modifies collapse it — peel its author.
        for s in program.walk():
            if s.sid in occ_sids:
                continue
            du = stmt_defuse(s)
            if priv not in du.array_defs and priv not in du.array_uses:
                continue
            anns = [a for a in store.for_sid(s.sid)
                    if a.stamp > record.stamp
                    and a.kind in ("cp", "add", "mv", "md")]
            if anns:
                a = min(anns, key=lambda x: x.stamp)
                return ReversibilityResult.blocked(Violation(
                    f"S{s.sid} references the private copy {priv} and was "
                    f"created after t{record.stamp}",
                    action_id=a.action_id, stamp=a.stamp,
                    code="prv.reversibility.private-shared",
                    witness={"sid": s.sid, "array": priv,
                             "annotation": a.kind}))
            return ReversibilityResult.blocked(Violation(
                f"S{s.sid} references the private copy {priv} with no "
                "recorded action (user edit)",
                code="prv.reversibility.private-edit",
                witness={"sid": s.sid, "array": priv}))
        return ReversibilityResult.ok()

    def table2_row(self) -> Dict[str, str]:
        return {
            "transformation": "Scalar Privatization (PRV)",
            "pre_pattern": "Loop L; scalar t: write-before-read each "
                           "iteration; t dead outside L;",
            "primitive_actions": "Modify(occ(S,pos), t_prv(L.var)) "
                                 "∀ occurrences of t in L.body;",
            "post_pattern": "every former occurrence of t is t_prv(L.var);",
        }

    def table3_row(self) -> Dict[str, List[str]]:
        return {
            "safety": [
                "Add/Modify a statement referencing t outside the loop (†)",
                "Add/Modify a statement referencing t_prv outside the "
                "privatized statements (†)",
            ],
            "reversibility": [
                "Delete one of the privatized statements",
                "Modify a privatized occurrence again",
                "Copy/Add/Move a statement that references t_prv",
            ],
        }
