"""Constant Propagation (CTP).

Table 2 row::

    pre_pattern:        Stmt S_i: type(opr_2) == const;
                        Stmt S_j: opr(pos) == S_i.opr_2;
    primitive actions:  Modify(opr(S_j, pos), S_i.opr_2);
    post_pattern:       Stmt S_j: opr(pos) = S_i.opr_2;

One application replaces a single operand occurrence (the ``pos`` of the
pattern) — Figure 1's ``ctp(2)`` replaces the ``C`` in statement 5 by the
constant ``1``, retaining the original operand under an ``md_2``
annotation.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.incremental import AnalysisCache
from repro.core.annotations import AnnotationStore
from repro.core.history import TransformationRecord
from repro.lang.ast_nodes import (
    Assign,
    Const,
    Program,
    VarRef,
    exprs_equal,
    expr_at,
    walk_expr,
)
from repro.transforms.base import (
    ApplyContext,
    Opportunity,
    ReversibilityResult,
    SafetyResult,
    Transformation,
    Violation,
    modified_after,
    stmt_deleted_after,
)


def _const_def(program, cache, use_sid: int, var: str):
    """The unique constant-assignment def reaching a use, or ``None``."""
    df = cache.dataflow()
    defs = {d for d in df.reach_in.get(use_sid, frozenset()) if d[1] == var}
    if len(defs) != 1:
        return None
    def_sid = next(iter(defs))[0]
    if not program.is_attached(def_sid):
        return None
    stmt = program.node(def_sid)
    if (isinstance(stmt, Assign) and isinstance(stmt.target, VarRef)
            and stmt.target.name == var and isinstance(stmt.expr, Const)):
        return def_sid, stmt.expr.value
    return None


def _use_paths(stmt) -> List[tuple]:
    """Paths of every scalar-variable occurrence usable as an operand.

    The assignment target's base variable is excluded (it is a def), but
    array-subscript variables anywhere are fair game.
    """
    paths = []
    for slot, root in stmt.expr_slots():
        for sub_path, node in walk_expr(root):
            if isinstance(node, VarRef):
                full = (slot,) + sub_path
                if slot == "target" and not sub_path:
                    continue  # scalar assignment target: a def, not a use
                paths.append(full)
    return paths


class ConstantPropagation(Transformation):
    """Replace a variable operand by the constant that must reach it."""

    name = "ctp"
    full_name = "Constant Propagation"
    # Table 4, row CTP (published), PLUS a documented deviation: our CTP
    # replaces one operand occurrence at a time, so propagating into a
    # copy (``w = v`` → ``w = 1``) creates a new constant definition that
    # enables a further CTP.  The published row marks CTP→CTP "-" (a
    # whole-program constant propagator saturates in one application);
    # omitting the self-entry makes the reverse-destroy heuristic unsound
    # at occurrence granularity.  See EXPERIMENTS.md (T4).
    enables = frozenset({"dce", "cse", "ctp", "cfo", "icm", "smi", "fus",
                         "inx"})
    enables_published = True

    def find(self, program: Program, cache: AnalysisCache) -> List[Opportunity]:
        out: List[Opportunity] = []
        for s in program.walk():
            for path in _use_paths(s):
                node = expr_at(s, path)
                hit = _const_def(program, cache, s.sid, node.name)
                if hit is None:
                    continue
                def_sid, value = hit
                out.append(Opportunity(
                    self.name,
                    {"def_sid": def_sid, "use_sid": s.sid, "path": path,
                     "var": node.name, "value": value},
                    f"{node.name}@S{s.sid}:{'.'.join(path)} ← {value} "
                    f"(from S{def_sid})"))
        return out

    def apply_actions(self, ctx: ApplyContext, opp: Opportunity) -> None:
        p = opp.params
        ctx.record.pre_pattern = {
            "def_sid": p["def_sid"], "use_sid": p["use_sid"],
            "var": p["var"], "value": p["value"], "path": p["path"],
        }
        ctx.modify(p["use_sid"], p["path"], Const(p["value"]))
        ctx.record.post_pattern = {
            "use_sid": p["use_sid"], "path": p["path"],
            "expr": Const(p["value"]),
        }

    def check_safety(self, ctx, record: TransformationRecord) -> SafetyResult:
        program, cache = ctx.program, ctx.cache
        pre = record.pre_pattern
        def_sid, use_sid = pre["def_sid"], pre["use_sid"]
        t = record.stamp
        if not program.is_attached(use_sid):
            # the transformed statement is gone; nothing to preserve
            return SafetyResult.ok()
        if not program.is_attached(def_sid):
            # a later active transformation (typically DCE, which CTP
            # itself enabled) may legally have removed the now-dead
            # definition; only undos/edits deleting it break safety.
            if ctx.deleted_by_active(def_sid, t):
                return SafetyResult.ok()
            return SafetyResult.broken(Violation(
                f"constant definition S{def_sid} no longer exists",
                code="ctp.safety.def-deleted",
                witness={"def_sid": def_sid,
                         "pattern": "Stmt S_i: type(opr_2) == const"}))
        stmt = program.node(def_sid)
        if not (isinstance(stmt, Assign) and isinstance(stmt.target, VarRef)
                and stmt.target.name == pre["var"]
                and isinstance(stmt.expr, Const)
                and stmt.expr.value == pre["value"]):
            if ctx.attributed_to_active(def_sid, t, ("md",)):
                return SafetyResult.ok()
            return SafetyResult.broken(Violation(
                f"S{def_sid} no longer assigns {pre['value']} to {pre['var']}",
                code="ctp.safety.def-changed",
                witness={"def_sid": def_sid, "var": pre["var"],
                         "value": pre["value"]}))
        df = cache.dataflow()
        defs = {d for d in df.reach_in.get(use_sid, frozenset())
                if d[1] == pre["var"]}
        key = (def_sid, pre["var"])
        extras = [d for d in defs - {key}
                  if not ctx.attributed_to_active(d[0], t, ("cp", "add", "mv"))]
        if extras:
            return SafetyResult.broken(Violation(
                f"S{extras[0][0]} also defines {pre['var']} reaching "
                f"S{use_sid}",
                code="ctp.safety.competing-def",
                witness={"def_sid": extras[0][0], "use_sid": use_sid,
                         "var": pre["var"]}))
        if key not in defs and not ctx.attributed_to_active(def_sid, t, ("mv",)):
            return SafetyResult.broken(Violation(
                f"S{def_sid} no longer reaches S{use_sid}",
                code="ctp.safety.def-unreaching",
                witness={"def_sid": def_sid, "use_sid": use_sid,
                         "var": pre["var"]}))
        return SafetyResult.ok()

    def check_reversibility(self, program: Program, store: AnnotationStore,
                            record: TransformationRecord) -> ReversibilityResult:
        post = record.post_pattern
        sid, path = post["use_sid"], post["path"]
        v = stmt_deleted_after(program, store, sid, record.stamp)
        if v is not None:
            return ReversibilityResult.blocked(v)
        v = modified_after(program, store, sid, path, record.stamp)
        if v is not None:
            return ReversibilityResult.blocked(v)
        try:
            current = expr_at(program.node(sid), path)
        except KeyError:
            return ReversibilityResult.blocked(Violation(
                f"operand path {path} no longer exists on S{sid}",
                code="ctp.reversibility.path-gone",
                witness={"sid": sid, "path": list(path)}))
        if not exprs_equal(current, post["expr"]):
            return ReversibilityResult.blocked(Violation(
                f"operand at S{sid}:{'.'.join(path)} no longer matches the "
                "post pattern",
                code="ctp.reversibility.operand-mismatch",
                witness={"sid": sid, "path": list(path),
                         "pattern": "Stmt S_j: opr(pos) = S_i.opr_2"}))
        return ReversibilityResult.ok()

    def table2_row(self) -> Dict[str, str]:
        return {
            "transformation": "Constant Propagation (CTP)",
            "pre_pattern": "Stmt S_i: type(opr_2) == const; "
                           "Stmt S_j: opr(pos) == S_i.opr_2;",
            "primitive_actions": "Modify(opr(S_j,pos), S_i.opr_2);",
            "post_pattern": "Stmt S_j: opr(pos) = S_i.opr_2;",
        }

    def table3_row(self) -> Dict[str, List[str]]:
        return {
            "safety": [
                "Delete the constant definition S_i",
                "Modify S_i so it no longer assigns the propagated constant",
                "Add/Move a definition of the variable onto a path reaching S_j (†)",
            ],
            "reversibility": [
                "Delete the modified statement S_j",
                "Modify the propagated operand of S_j again",
            ],
        }
