"""Invariant Code Motion (ICM).

Table 2 row::

    pre_pattern:        Loop L_1;  Stmt S_i;   /* S_i invariant in L_1 */
    primitive actions:  Move(S_i, L_1.prev);
    post_pattern:       Stmt S_i;  ptr orig_location;

Hoisting conditions (conservative):

* ``S_i`` is an assignment directly inside ``L_1``'s body;
* every scalar it reads (including subscripts of its target) is defined
  nowhere in ``L_1`` (the loop variable included), and every array it
  reads is written nowhere in ``L_1``;
* a **scalar** target must be defined only by ``S_i`` within ``L_1`` and
  used nowhere else in ``L_1``; the loop must provably execute at least
  once, or the target must be referenced nowhere outside the loop;
* an **array** target must be referenced nowhere else in ``L_1`` and the
  loop must provably execute at least once (hoisting introduces the
  store on the zero-trip path).

This is Figure 1's ``icm(4)``: after interchange, statement 5
(``A(j) = B(j) + 1``) is invariant in the new inner ``i`` loop and is
hoisted in front of it — the ``mv_4`` move that later blocks the
interchange's reversal (§5.2).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.analysis.incremental import AnalysisCache
from repro.core.annotations import AnnotationStore
from repro.core.history import TransformationRecord
from repro.core.locations import Location
from repro.lang.ast_nodes import (
    ArrayRef,
    Assign,
    Loop,
    Program,
    VarRef,
    expr_arrays,
    expr_vars,
    stmt_defuse,
)
from repro.transforms.base import (
    ApplyContext,
    Opportunity,
    ReversibilityResult,
    SafetyResult,
    Transformation,
    Violation,
    container_context_violation,
    moved_after,
    stmt_deleted_after,
)
from repro.transforms.loop_utils import (
    const_trip_count,
    loop_defs_uses,
    subtree_stmts,
    var_referenced,
)


def _hoistable(program: Program, loop: Loop, stmt: Assign) -> bool:
    """Check all invariance conditions for ``stmt`` within ``loop``."""
    sd, su, aw, ar = loop_defs_uses(loop)
    du = stmt_defuse(stmt)
    # operands invariant
    if du.uses & sd:
        return False
    if du.array_uses & aw:
        return False
    trip = const_trip_count(loop)
    at_least_once = trip is not None and trip >= 1
    order = subtree_stmts(loop)
    pos = {s.sid: k for k, s in enumerate(order)}
    others = [s for s in order if s.sid != stmt.sid]
    if isinstance(stmt.target, VarRef):
        v = stmt.target.name
        for o in others:
            odu = stmt_defuse(o)
            if v in odu.defs:
                return False  # another definition of the target in the loop
            # when re-checking an already-hoisted statement, it sits
            # before the loop: every in-loop use counts as "after" it.
            if v in odu.uses and pos[o.sid] < pos.get(stmt.sid, -1):
                # a textually earlier use would read the pre-loop value in
                # the first iteration; hoisting would change what it sees
                return False
        if not at_least_once:
            exclude = {s.sid for s in order}
            if var_referenced(program, v, exclude_sids=exclude):
                return False
        return True
    if isinstance(stmt.target, ArrayRef):
        if not at_least_once:
            return False
        a = stmt.target.name
        for o in others:
            odu = stmt_defuse(o)
            if a in odu.array_defs or a in odu.array_uses:
                return False
        return True
    return False


class InvariantCodeMotion(Transformation):
    """Hoist a loop-invariant assignment out of its loop."""

    name = "icm"
    full_name = "Invariant Code Motion"
    # Table 4, row ICM (published), extended with the parallel column:
    # hoisting an invariant scalar definition out of a loop removes the
    # carried scalar dependence it caused, enabling PAR.
    enables = frozenset({"cse", "icm", "fus", "inx", "par"})
    enables_published = True

    def find(self, program: Program, cache: AnalysisCache) -> List[Opportunity]:
        out: List[Opportunity] = []
        for s in program.walk():
            if type(s) is not Loop:  # sequential loops only (not DOALL)
                continue
            for member in s.body:
                if isinstance(member, Assign) and _hoistable(program, s, member):
                    out.append(Opportunity(
                        self.name, {"sid": member.sid, "loop": s.sid},
                        f"S{member.sid} invariant in loop S{s.sid}"))
        return out

    def apply_actions(self, ctx: ApplyContext, opp: Opportunity) -> None:
        sid, loop_sid = opp.params["sid"], opp.params["loop"]
        ctx.record.pre_pattern = {"sid": sid, "loop": loop_sid}
        orig = Location.of_stmt(ctx.program, sid)
        act = ctx.move(sid, Location.before(ctx.program, loop_sid))
        ctx.record.post_pattern = {
            "sid": sid, "loop": loop_sid, "orig_loc": act.from_loc,
        }

    def check_safety(self, ctx, record: TransformationRecord) -> SafetyResult:
        program = ctx.program
        t = record.stamp
        sid = record.post_pattern["sid"]
        loop_sid = record.post_pattern["loop"]
        if not program.is_attached(sid):
            return SafetyResult.ok()  # hoisted statement gone: nothing to protect
        if not program.is_attached(loop_sid):
            if ctx.deleted_by_active(loop_sid, t):
                return SafetyResult.ok()  # e.g. an emptied loop was removed
            return SafetyResult.broken(Violation(
                f"loop S{loop_sid} no longer exists",
                code="icm.safety.loop-deleted",
                witness={"loop_sid": loop_sid, "pattern": "Loop L_1"}))
        stmt = program.node(sid)
        loop = program.node(loop_sid)
        if not isinstance(stmt, Assign) or not isinstance(loop, Loop):
            return SafetyResult.broken(Violation(
                "pattern statements changed kind",
                code="icm.safety.kind-changed",
                witness={"sid": sid, "loop_sid": loop_sid}))
        if not _hoistable(program, loop, stmt):
            # code legally rearranged by active later transformations
            # (e.g. FUS merged another body into the loop) composes to a
            # correct program even though the raw precondition fails.
            if ctx.subtree_touched_by_active(loop_sid, t) or \
                    ctx.attributed_to_active(sid, t, ("md", "mv")):
                return SafetyResult.ok()
            return SafetyResult.broken(Violation(
                f"S{sid} is no longer invariant in loop S{loop_sid}",
                code="icm.safety.not-invariant",
                witness={"sid": sid, "loop_sid": loop_sid}))
        # nothing between the hoisted statement and the loop may touch the
        # target (it would observe the hoisted value)
        parent = program.parent_of(sid)
        ploop = program.parent_of(loop_sid)
        if parent == ploop and parent is not None:
            lst = program.container_list(parent)
            i_s = program.index_in_container(sid)
            i_l = program.index_in_container(loop_sid)
            lo, hi = min(i_s, i_l), max(i_s, i_l)
            tdu = stmt_defuse(stmt)
            tnames = set(tdu.defs) | set(tdu.array_defs)
            for between in lst[lo + 1:hi]:
                bdu = stmt_defuse(between)
                if tnames & (set(bdu.defs) | set(bdu.uses)
                             | set(bdu.array_defs) | set(bdu.array_uses)):
                    if ctx.attributed_to_active(between.sid, t,
                                                ("mv", "add", "cp")):
                        continue
                    return SafetyResult.broken(Violation(
                        f"S{between.sid} between the hoisted statement and "
                        "the loop references the hoisted target",
                        code="icm.safety.target-observed",
                        witness={"sid": between.sid, "hoisted_sid": sid,
                                 "loop_sid": loop_sid}))
        return SafetyResult.ok()

    def check_reversibility(self, program: Program, store: AnnotationStore,
                            record: TransformationRecord) -> ReversibilityResult:
        post = record.post_pattern
        sid = post["sid"]
        v = stmt_deleted_after(program, store, sid, record.stamp)
        if v is not None:
            return ReversibilityResult.blocked(v)
        v = moved_after(program, store, sid, record.stamp)
        if v is not None:
            return ReversibilityResult.blocked(v)
        loc: Location = post["orig_loc"]
        v = container_context_violation(program, store, loc, record.stamp)
        if v is not None:
            return ReversibilityResult.blocked(v)
        if loc.resolve(program) is None:
            return ReversibilityResult.blocked(Violation(
                "original location inside the loop is unresolvable",
                code="icm.reversibility.location-unresolvable",
                witness={"container": list(loc.container)}))
        return ReversibilityResult.ok()

    def table2_row(self) -> Dict[str, str]:
        return {
            "transformation": "Invariant Code Motion (ICM)",
            "pre_pattern": "Loop L_1; Stmt S_i;",
            "primitive_actions": "Move(S_i, L_1.prev);",
            "post_pattern": "Stmt S_i; ptr orig_location;",
        }

    def table3_row(self) -> Dict[str, List[str]]:
        return {
            "safety": [
                "Add/Move a definition of an operand of S_i into L_1 (†)",
                "Add/Move a reference to S_i's target into L_1 (†)",
                "Modify the loop bounds so L_1 may execute zero times (†)",
                "Delete the loop L_1",
            ],
            "reversibility": [
                "Delete context of the original location (the loop body)",
                "Copy context of the original location (e.g. by LUR)",
                "Move the hoisted statement S_i again",
            ],
        }
