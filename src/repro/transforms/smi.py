"""Strip Mining (SMI).

Pattern::

    pre_pattern:        Loop L (var i, const bounds, unit step,
                        trip divisible by the strip size s);
    primitive actions:  Add(L.prev, -, Loop i_o = lower, upper, s);
                        Move(L, i_o.body);
                        Modify(L.header, i = i_o .. i_o + s - 1);
    post_pattern:       Tight Loops (i_o, L);

Strip mining (a.k.a. loop sectioning/blocking in one dimension) is the
canonical *enabler* of vectorization and tiling: the inner loop's trip
count becomes the fixed strip size.  Because the trip count divides
evenly, no residue loop is needed and the transformation is exactly
semantics preserving.  The fresh outer index variable is chosen to
collide with nothing in the program.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.incremental import AnalysisCache
from repro.core.actions import HEADER_PATH, HeaderSpec
from repro.core.annotations import AnnotationStore
from repro.core.history import TransformationRecord
from repro.core.locations import Location
from repro.lang.ast_nodes import BinOp, Const, Loop, Program, VarRef
from repro.transforms.base import (
    ApplyContext,
    Opportunity,
    ReversibilityResult,
    SafetyResult,
    Transformation,
    Violation,
    modified_after,
    stmt_deleted_after,
)
from repro.transforms.loop_utils import (
    const_trip_count,
    subtree_stmts,
    var_referenced,
)

#: strip sizes tried by the opportunity finder, smallest first.
CANDIDATE_STRIPS = (4, 2, 8)


def _fresh_var(program: Program, base: str) -> str:
    """An index name not referenced anywhere in the program."""
    k = 0
    while True:
        name = f"{base}_o" if k == 0 else f"{base}_o{k}"
        if not var_referenced(program, name, exclude_sids=set()):
            return name
        k += 1


class StripMining(Transformation):
    """Split one loop into an outer strip loop and an inner element loop."""

    name = "smi"
    full_name = "Strip Mining"
    # Derived row (not published in Table 4): the created 2-deep nest is
    # what interchange (tiling) and further sectioning feed on.
    enables = frozenset({"inx", "icm"})
    enables_published = False

    def find(self, program: Program, cache: AnalysisCache) -> List[Opportunity]:
        out: List[Opportunity] = []
        for s in program.walk():
            if type(s) is not Loop:  # sequential loops only (not DOALL)
                continue
            if not (isinstance(s.step, Const) and s.step.value == 1):
                continue
            trip = const_trip_count(s)
            if trip is None or trip < 4:
                continue
            for strip in CANDIDATE_STRIPS:
                if trip % strip == 0 and trip > strip:
                    out.append(Opportunity(
                        self.name, {"loop": s.sid, "strip": strip},
                        f"strip-mine S{s.sid} ({s.var}) by {strip}"))
                    break
        return out

    def apply_actions(self, ctx: ApplyContext, opp: Opportunity) -> None:
        loop_sid = opp.params["loop"]
        strip = opp.params["strip"]
        loop = ctx.program.node(loop_sid)
        outer_var = _fresh_var(ctx.program, loop.var)
        ctx.record.pre_pattern = {
            "loop": loop_sid, "strip": strip,
            "header": HeaderSpec.of(loop), "outer_var": outer_var,
        }
        outer = Loop(outer_var, loop.lower.clone(), loop.upper.clone(),
                     Const(strip), [])
        add_act = ctx.add(outer, Location.before(ctx.program, loop_sid))
        ctx.move(loop_sid, Location.at(ctx.program, (outer.sid, "body"), 0))
        new_header = HeaderSpec(
            loop.var, VarRef(outer_var),
            BinOp("+", VarRef(outer_var), Const(strip - 1)), Const(1))
        ctx.modify_header(loop_sid, new_header)
        ctx.record.post_pattern = {
            "outer": outer.sid, "inner": loop_sid, "strip": strip,
            "outer_var": outer_var, "inner_header": new_header,
        }

    def check_safety(self, ctx, record: TransformationRecord) -> SafetyResult:
        program = ctx.program
        post = record.post_pattern
        t = record.stamp
        outer_sid, inner_sid = post["outer"], post["inner"]
        strip = post["strip"]
        if not program.is_attached(outer_sid):
            return SafetyResult.ok()
        if not program.is_attached(inner_sid):
            if ctx.deleted_by_active(inner_sid, t):
                return SafetyResult.ok()
            return SafetyResult.broken(Violation(
                "the strip-mined loop vanished",
                code="smi.safety.loop-deleted",
                witness={"inner_sid": inner_sid}))
        outer = program.node(outer_sid)
        inner = program.node(inner_sid)
        if not isinstance(outer, Loop) or not isinstance(inner, Loop):
            return SafetyResult.broken(Violation(
                "pattern statements changed kind",
                code="smi.safety.kind-changed",
                witness={"outer_sid": outer_sid, "inner_sid": inner_sid}))
        header_rewritten = (ctx.attributed_to_active(outer_sid, t, ("md",))
                            or ctx.attributed_to_active(inner_sid, t, ("md",)))
        if not (isinstance(outer.lower, Const) and isinstance(outer.upper, Const)
                and isinstance(outer.step, Const)
                and outer.step.value == strip):
            if header_rewritten:
                return SafetyResult.ok()
            return SafetyResult.broken(Violation(
                "outer strip header was altered",
                code="smi.safety.header-altered",
                witness={"outer_sid": outer_sid, "strip": strip}))
        trip = outer.upper.value - outer.lower.value + 1
        if trip % strip != 0:
            if header_rewritten:
                return SafetyResult.ok()
            return SafetyResult.broken(Violation(
                "trip count is no longer divisible by the strip size — the "
                "last strip would overrun the original bounds",
                code="smi.safety.indivisible-trip",
                witness={"outer_sid": outer_sid, "trip": trip,
                         "strip": strip}))
        # the fresh index must still be private to the pair
        pair_sids = {s.sid for s in subtree_stmts(outer)}
        if var_referenced(program, post["outer_var"], exclude_sids=pair_sids):
            return SafetyResult.broken(Violation(
                f"outer index {post['outer_var']} is referenced outside "
                "the strip nest",
                code="smi.safety.index-escaped",
                witness={"outer_var": post["outer_var"]}))
        return SafetyResult.ok()

    def check_reversibility(self, program: Program, store: AnnotationStore,
                            record: TransformationRecord) -> ReversibilityResult:
        post = record.post_pattern
        outer_sid, inner_sid = post["outer"], post["inner"]
        for sid in (outer_sid, inner_sid):
            v = stmt_deleted_after(program, store, sid, record.stamp)
            if v is not None:
                return ReversibilityResult.blocked(v)
        v = modified_after(program, store, inner_sid, HEADER_PATH, record.stamp)
        if v is not None:
            return ReversibilityResult.blocked(v)
        outer = program.node(outer_sid)
        occupants = [m for m in outer.body if m.sid != inner_sid]
        if occupants or program.parent_of(inner_sid) != (outer_sid, "body"):
            for m in occupants:
                anns = [a for a in store.for_sid(m.sid)
                        if a.stamp > record.stamp
                        and a.kind in ("mv", "add", "cp")]
                if anns:
                    a = min(anns, key=lambda x: x.stamp)
                    return ReversibilityResult.blocked(Violation(
                        f"S{m.sid} entered the strip nest",
                        action_id=a.action_id, stamp=a.stamp,
                        code="smi.reversibility.intruder",
                        witness={"sid": m.sid, "annotation": a.kind}))
            return ReversibilityResult.blocked(Violation(
                "the strip nest is no longer tight",
                code="smi.reversibility.nest-broken",
                witness={"outer_sid": outer_sid, "inner_sid": inner_sid}))
        return ReversibilityResult.ok()

    def table2_row(self) -> Dict[str, str]:
        return {
            "transformation": "Strip Mining (SMI)",
            "pre_pattern": "Loop L: const bounds, unit step, trip % s == 0;",
            "primitive_actions": "Add(L.prev, -, Loop i_o by s); "
                                 "Move(L, i_o.body); "
                                 "Modify(L.header, i_o..i_o+s-1);",
            "post_pattern": "Tight Loops (i_o, L);",
        }

    def table3_row(self) -> Dict[str, List[str]]:
        return {
            "safety": [
                "Modify the bounds so the trip count stops dividing by s (†)",
                "Add/Move a reference to the fresh outer index elsewhere (†)",
            ],
            "reversibility": [
                "Move/Add a statement into the strip nest",
                "Modify the inner loop header again",
                "Delete either loop of the nest",
            ],
        }
