"""Loop Fusion (FUS).

Pattern::

    pre_pattern:        Adjacent conformable Loops (L_1, L_2);
                        no fusion-preventing dependence;
    primitive actions:  Move(S, L_1.end) for each S in L_2.body;
                        Delete(L_2);
    post_pattern:       Loop L_1 containing both bodies;
                        Del_stmt L_2;  the moved statements as a suffix;

Legality: the loops are textually adjacent with identical headers, and
no dependence from ``L_1``'s body to ``L_2``'s body has negative
distance (which after fusion would make a consumer run before its
producer).  Figure 3 motivates checking this on the region-node
dependence summaries — benchmark ``bench_fig3`` measures that shortcut.

Loops containing I/O statements in both bodies are never fused (fusion
would interleave the two I/O streams).
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.depend import fusion_preventing
from repro.analysis.incremental import AnalysisCache
from repro.core.actions import HEADER_PATH, HeaderSpec
from repro.core.annotations import AnnotationStore
from repro.core.history import TransformationRecord
from repro.core.locations import Location
from repro.lang.ast_nodes import Loop, Program
from repro.transforms.base import (
    ApplyContext,
    Opportunity,
    ReversibilityResult,
    SafetyResult,
    Transformation,
    Violation,
    container_context_violation,
    modified_after,
)
from repro.transforms.loop_utils import contains_io


class LoopFusion(Transformation):
    """Merge two adjacent conformable loops into one."""

    name = "fus"
    full_name = "Loop Fusion"
    # Derived row (not published in Table 4): fusing bodies juxtaposes
    # computations (CSE), creates a single loop for further fusion, and
    # can expose invariants.
    enables = frozenset({"cse", "fus", "icm"})
    enables_published = False

    def find(self, program: Program, cache: AnalysisCache) -> List[Opportunity]:
        out: List[Opportunity] = []
        containers = [(0, "body", program.body)]
        for s in program.walk():
            for slot in s.body_slots():
                containers.append((s.sid, slot, s.get_body(slot)))
        for _csid, _slot, lst in containers:
            for a, b in zip(lst, lst[1:]):
                if not (type(a) is Loop and type(b) is Loop):
                    continue  # sequential loops only (not DOALL)
                if not a.header_equal(b):
                    continue
                if contains_io(a) and contains_io(b):
                    continue
                if fusion_preventing(program, a, b):
                    continue
                out.append(Opportunity(
                    self.name, {"first": a.sid, "second": b.sid},
                    f"fuse loops S{a.sid} and S{b.sid} over {a.var}"))
        return out

    def apply_actions(self, ctx: ApplyContext, opp: Opportunity) -> None:
        first_sid, second_sid = opp.params["first"], opp.params["second"]
        first = ctx.program.node(first_sid)
        second = ctx.program.node(second_sid)
        boundary = len(first.body)
        moved: List[int] = []
        ctx.record.pre_pattern = {
            "first": first_sid, "second": second_sid,
            "header": HeaderSpec.of(first), "boundary": boundary,
        }
        for stmt in list(second.body):
            ctx.move(stmt.sid,
                     Location.at(ctx.program, (first_sid, "body"),
                                 len(first.body)))
            moved.append(stmt.sid)
        ctx.delete(second_sid)
        ctx.record.post_pattern = {
            "loop": first_sid, "deleted": second_sid,
            "moved": moved, "boundary": boundary,
            "originals": [m.sid for m in first.body if m.sid not in moved],
            "header": HeaderSpec.of(first),
        }

    def check_safety(self, ctx, record: TransformationRecord) -> SafetyResult:
        program = ctx.program
        post = record.post_pattern
        t = record.stamp
        loop_sid = post["loop"]
        if not program.is_attached(loop_sid):
            return SafetyResult.ok()  # fused loop gone entirely
        loop = program.node(loop_sid)
        if not isinstance(loop, Loop):
            return SafetyResult.broken(Violation(
                "fused statement is no longer a loop",
                code="fus.safety.kind-changed",
                witness={"loop_sid": loop_sid}))
        moved = [sid for sid in post["moved"]
                 if program.is_attached(sid)
                 and program.parent_of(sid) == (loop_sid, "body")]
        group2 = set(moved)
        group1 = [m for m in loop.body if m.sid not in group2]
        if not group2 or not group1:
            return SafetyResult.ok()  # one side vanished: nothing to separate
        # re-run the fusion-prevention test on the current two halves by
        # materialising them as pseudo-loops sharing the fused header.
        pseudo1 = Loop(loop.var, loop.lower.clone(), loop.upper.clone(),
                       loop.step.clone(), group1)
        pseudo2 = Loop(loop.var, loop.lower.clone(), loop.upper.clone(),
                       loop.step.clone(),
                       [program.node(sid) for sid in moved])
        blockers = fusion_preventing(program, pseudo1, pseudo2)
        for src, dst, arr in blockers:
            # blockers entirely attributable to active later transformations
            # were legality-checked when those transformations applied.
            if ctx.attributed_to_active(src, t, ("md", "mv", "add", "cp")) or \
                    ctx.attributed_to_active(dst, t, ("md", "mv", "add", "cp")):
                continue
            return SafetyResult.broken(Violation(
                f"dependence on {arr} (S{src} → S{dst}) now prevents the "
                "applied fusion",
                code="fus.safety.fusion-preventing",
                witness={"src_sid": src, "dst_sid": dst, "array": arr}))
        return SafetyResult.ok()

    def check_reversibility(self, program: Program, store: AnnotationStore,
                            record: TransformationRecord) -> ReversibilityResult:
        post = record.post_pattern
        loop_sid = post["loop"]
        if not program.is_attached(loop_sid):
            from repro.transforms.base import stmt_deleted_after

            v = stmt_deleted_after(program, store, loop_sid, record.stamp)
            return ReversibilityResult.blocked(
                v if v is not None else Violation(
                    "fused loop is detached",
                    code="fus.reversibility.loop-detached",
                    witness={"loop_sid": loop_sid}))
        loop = program.node(loop_sid)
        v = modified_after(program, store, loop_sid, HEADER_PATH, record.stamp)
        if v is not None:
            return ReversibilityResult.blocked(v)
        # statements that entered the fused loop after the fusion (e.g. a
        # later fusion's moved block, or unrolled copies) would be carried
        # past the split boundary by the inverse moves — their authors are
        # affecting transformations and must be peeled first.
        known = set(post["moved"]) | set(post.get("originals", ()))
        for member in loop.body:
            if member.sid in known:
                continue
            anns = [a for a in store.for_sid(member.sid)
                    if a.stamp > record.stamp
                    and a.kind in ("mv", "add", "cp")]
            if anns:
                a = min(anns, key=lambda x: x.stamp)
                return ReversibilityResult.blocked(Violation(
                    f"S{member.sid} entered the fused loop after t{record.stamp}",
                    action_id=a.action_id, stamp=a.stamp,
                    code="fus.reversibility.intruder",
                    witness={"sid": member.sid, "annotation": a.kind}))
            return ReversibilityResult.blocked(Violation(
                f"S{member.sid} entered the fused loop with no recorded "
                "action (user edit)",
                code="fus.reversibility.edit-intruder",
                witness={"sid": member.sid}))
        # the moved statements must still be present AND untouched by
        # later moves — even a later move that round-tripped back into
        # place means a later transformation's bookkeeping references the
        # statement's position, and yanking it out from under that
        # record would orphan it.
        from repro.transforms.base import moved_after

        body_sids = [m.sid for m in loop.body]
        for sid in post["moved"]:
            v = moved_after(program, store, sid, record.stamp)
            if v is not None:
                return ReversibilityResult.blocked(v)
            if not program.is_attached(sid) or sid not in body_sids:
                anns = [a for a in store.for_sid(sid)
                        if a.stamp > record.stamp
                        and a.kind in ("mv", "del")]
                if anns:
                    a = min(anns, key=lambda x: x.stamp)
                    return ReversibilityResult.blocked(Violation(
                        f"moved statement S{sid} left the fused loop",
                        action_id=a.action_id, stamp=a.stamp,
                        code="fus.reversibility.member-left",
                        witness={"sid": sid, "annotation": a.kind}))
                return ReversibilityResult.blocked(Violation(
                    f"moved statement S{sid} is no longer in the fused loop",
                    code="fus.reversibility.member-missing",
                    witness={"sid": sid}))
        # the original location of the deleted second loop must resolve
        deleted = post["deleted"]
        del_act = next(a for a in record.actions if a.sid == deleted)
        v = container_context_violation(program, store, del_act.from_loc,
                                        record.stamp)
        if v is not None:
            return ReversibilityResult.blocked(v)
        return ReversibilityResult.ok()

    def table2_row(self) -> Dict[str, str]:
        return {
            "transformation": "Loop Fusion (FUS)",
            "pre_pattern": "Adjacent Loops (L_1, L_2), conformable headers, "
                           "no fusion-prevented dependence;",
            "primitive_actions": "Move(S, L_1.end) ∀ S ∈ L_2.body; Delete(L_2);",
            "post_pattern": "Loop L_1 (both bodies); Del_stmt L_2; "
                            "moved stmts as suffix;",
        }

    def table3_row(self) -> Dict[str, List[str]]:
        return {
            "safety": [
                "Add/Modify a statement creating a backward dependence "
                "between the fused halves (†)",
                "Modify the fused loop's header",
            ],
            "reversibility": [
                "Move/Delete one of the statements that came from L_2",
                "Modify the fused loop header again (e.g. by INX)",
                "Delete/Copy the context of L_2's original location",
            ],
        }
