"""Transformation base protocol: find / apply / safety / reversibility.

Every transformation implements four operations:

``find``
    Detect application opportunities (validating Table 2's pre patterns
    against the current analyses).
``apply_actions``
    Perform the transformation as a sequence of primitive actions through
    the shared :class:`~repro.core.actions.ActionApplier`, filling in the
    record's pre/post patterns.
``check_safety``
    Re-validate the pre pattern on the *current* program: does the
    transformation still preserve the original program's meaning?  Used
    after undos (rippling effects) and after edits (Table 3's
    safety-disabling conditions, including the †-edit-only ones).
``check_reversibility``
    Validate the post pattern: can the inverse actions run right now?
    When not, each :class:`Violation` names the disabling condition *and
    the primitive action that caused it*, which the UNDO algorithm maps
    back to the affecting transformation (Figure 4 lines 7–9).

This module also provides the shared post-pattern predicates the
concrete transformations compose — statement liveness, location-context
integrity (deleted/copied context), later-modification detection — so
the per-transformation code states only its own conditions.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.incremental import AnalysisCache
from repro.core.actions import ActionApplier
from repro.core.annotations import AnnotationStore
from repro.core.history import TransformationRecord
from repro.core.locations import Location
from repro.lang.ast_nodes import ExprPath, Program, Stmt


@dataclass(frozen=True)
class Opportunity:
    """One detected application opportunity."""

    name: str
    params: Dict
    description: str = ""

    def __str__(self) -> str:  # pragma: no cover - display aid
        return f"{self.name}({self.description})"


@dataclass(frozen=True)
class Violation:
    """One disabling condition (Table 3), with its causing action.

    ``action_id`` identifies the primitive action that created the
    condition (line 8 of the algorithm); it is ``None`` only for
    conditions caused by something outside the recorded history, which
    the engine reports as an unrecoverable :class:`UndoError`.

    ``code`` is a stable machine-readable identifier of the condition
    (``"<transform>.<check>.<slug>"`` for per-transformation conditions,
    ``"post.<slug>"`` for the shared post-pattern predicates below);
    ``witness`` names the clobbered pattern element or annotation that
    evidenced the condition.  Both feed the provenance layer
    (:mod:`repro.obs.provenance`); ``condition`` remains the
    human-readable message everything else renders.
    """

    condition: str
    action_id: Optional[int] = None
    stamp: Optional[int] = None
    code: str = ""
    witness: Optional[Dict] = None


@dataclass
class SafetyResult:
    """Outcome of a safety re-check."""

    safe: bool
    #: human-readable disabling conditions found (empty when safe).
    reasons: List[str] = field(default_factory=list)
    #: structured form of the same conditions (parallel to ``reasons``
    #: where the check provides them; may be shorter for legacy sites).
    violations: List[Violation] = field(default_factory=list)

    @staticmethod
    def ok() -> "SafetyResult":
        return SafetyResult(True)

    @staticmethod
    def broken(*reasons) -> "SafetyResult":
        """Unsafe, for the given reasons (strings or :class:`Violation`)."""
        texts: List[str] = []
        violations: List[Violation] = []
        for r in reasons:
            if isinstance(r, Violation):
                texts.append(r.condition)
                violations.append(r)
            else:
                texts.append(str(r))
                violations.append(Violation(str(r)))
        return SafetyResult(False, texts, violations)


@dataclass
class ReversibilityResult:
    """Outcome of a post-pattern validation."""

    reversible: bool
    violations: List[Violation] = field(default_factory=list)

    @staticmethod
    def ok() -> "ReversibilityResult":
        return ReversibilityResult(True)

    @staticmethod
    def blocked(*violations: Violation) -> "ReversibilityResult":
        return ReversibilityResult(False, list(violations))


@dataclass
class CheckContext:
    """Everything a safety re-check needs.

    Safety re-validation must distinguish *benign* divergence from the
    recorded pre pattern (caused by an **active later transformation**,
    which by §4.2 can never destroy safety — the programs compose) from
    *genuine* divergence (caused by an undo's inverse actions or a user
    edit).  That attribution needs the annotation store and the history,
    hence this context.
    """

    program: Program
    cache: AnalysisCache
    store: AnnotationStore
    history: object  # History; untyped to avoid an import cycle

    # -- attribution helpers --------------------------------------------------

    def _active_transform_stamp(self, stamp: int) -> bool:
        """Is ``stamp`` an active, non-edit transformation?"""
        h = self.history
        return (h is not None and h.has_stamp(stamp)
                and h.by_stamp(stamp).active
                and not h.by_stamp(stamp).is_edit)

    def attributed_to_active(self, sid: int, stamp: int,
                             kinds: Sequence[str]) -> bool:
        """Does ``sid`` carry a later annotation from an active transform?

        True means the divergence observed on this statement is the work
        of a legal, still-applied transformation — benign for safety.
        """
        for ann in self.store.for_sid(sid):
            if ann.stamp > stamp and ann.kind in kinds and \
                    self._active_transform_stamp(ann.stamp):
                return True
        return False

    def deleted_by_active(self, sid: int, stamp: int) -> bool:
        """Was the (detached) statement deleted by an active transform?

        Climbs the detached subtree like the reversibility checks do.
        """
        cur = sid
        guard = 0
        while guard < 10_000:
            guard += 1
            for ann in self.store.for_sid(cur):
                if ann.kind == "del" and ann.stamp > stamp:
                    return self._active_transform_stamp(ann.stamp)
            parent = self.program.parent_of(cur)
            if parent is None or parent[0] == 0:
                return False
            cur = parent[0]
        return False

    def subtree_touched_by_active(self, sid: int, stamp: int) -> bool:
        """Any active-transform annotation inside the statement's subtree?"""
        for ann in self.store.subtree_after(self.program, sid, stamp):
            if self._active_transform_stamp(ann.stamp):
                return True
        return False


@dataclass
class ApplyContext:
    """Everything a transformation needs while applying itself."""

    program: Program
    applier: ActionApplier
    cache: AnalysisCache
    record: TransformationRecord

    @property
    def stamp(self) -> int:
        return self.record.stamp

    # convenience: perform an action and append it to the record
    def delete(self, sid: int):
        """Perform ``Delete`` and append it to the record."""
        act = self.applier.delete(self.stamp, sid)
        self.record.actions.append(act)
        return act

    def add(self, stmt: Stmt, loc: Location):
        """Perform ``Add`` and append it to the record."""
        act = self.applier.add(self.stamp, stmt, loc)
        self.record.actions.append(act)
        return act

    def move(self, sid: int, loc: Location):
        """Perform ``Move`` and append it to the record."""
        act = self.applier.move(self.stamp, sid, loc)
        self.record.actions.append(act)
        return act

    def copy(self, src_sid: int, loc: Location):
        """Perform ``Copy`` and append it to the record."""
        act = self.applier.copy(self.stamp, src_sid, loc)
        self.record.actions.append(act)
        return act

    def modify(self, sid: int, path: ExprPath, new_expr):
        """Perform ``Modify`` and append it to the record."""
        act = self.applier.modify(self.stamp, sid, path, new_expr)
        self.record.actions.append(act)
        return act

    def modify_header(self, loop_sid: int, new_header):
        """Perform a loop-header ``Modify`` and append it to the record."""
        act = self.applier.modify_header(self.stamp, loop_sid, new_header)
        self.record.actions.append(act)
        return act


class Transformation(abc.ABC):
    """Abstract base for all transformations."""

    #: short code (``"dce"``), also the registry key.
    name: str = ""
    #: display name.
    full_name: str = ""
    #: Table 4 row: transformation codes this one can *enable* (and whose
    #: safety its reversal can therefore destroy).
    enables: frozenset = frozenset()
    #: True when the row was published in the paper; False for rows we
    #: derived (see DESIGN.md §2).
    enables_published: bool = True

    @abc.abstractmethod
    def find(self, program: Program, cache: AnalysisCache) -> List[Opportunity]:
        """Detect application opportunities in the current program."""

    @abc.abstractmethod
    def apply_actions(self, ctx: ApplyContext, opp: Opportunity) -> None:
        """Perform the transformation via primitive actions."""

    @abc.abstractmethod
    def check_safety(self, ctx: "CheckContext",
                     record: TransformationRecord) -> SafetyResult:
        """Re-validate the pre pattern on the current program.

        Divergences attributable (via the annotation store) to an active
        later transformation are benign; only changes from undos or user
        edits may report the transformation as unsafe.
        """

    @abc.abstractmethod
    def check_reversibility(self, program: Program, store: AnnotationStore,
                            record: TransformationRecord) -> ReversibilityResult:
        """Validate the post pattern (immediate reversibility)."""

    # -- documentation hooks (Tables 2 and 3) --------------------------------

    def table2_row(self) -> Dict[str, str]:
        """The transformation's Table 2 row (pattern documentation)."""
        return {"transformation": self.full_name, "pre_pattern": "",
                "primitive_actions": "", "post_pattern": ""}

    def table3_row(self) -> Dict[str, List[str]]:
        """The transformation's Table 3 row (disabling conditions)."""
        return {"safety": [], "reversibility": []}


# ---------------------------------------------------------------------------
# Shared post-pattern predicates
# ---------------------------------------------------------------------------


def stmt_deleted_after(program: Program, store: AnnotationStore,
                       sid: int, stamp: int) -> Optional[Violation]:
    """Was the statement (or an enclosing statement) deleted after ``stamp``?"""
    if program.is_attached(sid):
        return None
    # climb the detached subtree to the node carrying the del annotation
    cur = sid
    guard = 0
    while guard < 10_000:
        guard += 1
        for ann in store.for_sid(cur):
            if ann.kind == "del" and ann.stamp > stamp:
                return Violation(
                    f"statement S{sid} was deleted (context S{cur})",
                    action_id=ann.action_id, stamp=ann.stamp,
                    code="post.context-deleted",
                    witness={"sid": sid, "context_sid": cur,
                             "annotation": "del"})
        parent = program.parent_of(cur)
        if parent is None or parent[0] == 0:
            break
        cur = parent[0]
    return Violation(f"statement S{sid} is detached by an unknown action",
                     code="post.detached-unknown", witness={"sid": sid})


def container_context_violation(program: Program, store: AnnotationStore,
                                loc: Location, stamp: int) -> Optional[Violation]:
    """Table 3's DCE reversibility conditions, generalized.

    The original location cannot be determined when

    * its context was *deleted* — the container (or an ancestor) was
      detached after ``stamp`` — or
    * its context was *copied* — the container statement or an ancestor
      was the source of a ``Copy`` after ``stamp`` (e.g. the enclosing
      loop's body was duplicated by loop unrolling), making the restore
      target ambiguous.
    """
    csid, _slot = loc.container
    if csid != 0:
        if not program.is_attached(csid):
            return stmt_deleted_after(program, store, csid, stamp)
        # copied context: the container or any ancestor was a copy source
        for node_sid in [csid] + program.ancestors(csid):
            for ann in store.for_sid(node_sid):
                if ann.kind == "cps" and ann.stamp > stamp:
                    return Violation(
                        f"context S{node_sid} of the location was copied",
                        action_id=ann.action_id, stamp=ann.stamp,
                        code="post.context-copied",
                        witness={"context_sid": node_sid,
                                 "annotation": "cps"})
    # members of the container copied after stamp also duplicate the context
    if program.container_alive(loc.container):
        for member in program.container_list(loc.container):
            for ann in store.for_sid(member.sid):
                if ann.kind == "cps" and ann.stamp > stamp:
                    return Violation(
                        f"contents of the location's container were copied "
                        f"(S{member.sid})",
                        action_id=ann.action_id, stamp=ann.stamp,
                        code="post.context-copied",
                        witness={"member_sid": member.sid,
                                 "annotation": "cps"})
    return None


def moved_after(program: Program, store: AnnotationStore,
                sid: int, stamp: int) -> Optional[Violation]:
    """Was the statement moved by a later transformation?"""
    anns = store.after(sid, stamp, kinds=("mv",))
    if anns:
        a = min(anns, key=lambda x: x.stamp)
        return Violation(f"statement S{sid} was moved after t{stamp}",
                         action_id=a.action_id, stamp=a.stamp,
                         code="post.moved",
                         witness={"sid": sid, "annotation": "mv"})
    return None


def modified_after(program: Program, store: AnnotationStore, sid: int,
                   path: ExprPath, stamp: int) -> Optional[Violation]:
    """Was the recorded expression path modified by a later transformation?"""
    anns = store.path_modified_after(sid, path, stamp)
    if anns:
        a = min(anns, key=lambda x: x.stamp)
        return Violation(
            f"expression S{sid}:{'.'.join(path)} was modified after t{stamp}",
            action_id=a.action_id, stamp=a.stamp, code="post.modified",
            witness={"sid": sid, "path": list(path), "annotation": "md"})
    return None


def subtree_touched_after(program: Program, store: AnnotationStore,
                          sid: int, stamp: int,
                          kinds: Sequence[str] = ("md", "mv", "del", "add", "cp", "cps"),
                          ) -> Optional[Violation]:
    """Any later-stamped annotation anywhere in the statement's subtree?"""
    anns = store.subtree_after(program, sid, stamp, kinds)
    if anns:
        a = min(anns, key=lambda x: x.stamp)
        return Violation(
            f"subtree of S{sid} was changed after t{stamp} ({a.short()})",
            action_id=a.action_id, stamp=a.stamp, code="post.subtree-changed",
            witness={"sid": sid, "annotation": a.kind})
    return None


def inserted_into_after(program: Program, store: AnnotationStore,
                        container: Tuple[int, str], stamp: int,
                        exclude: Set[int]) -> Optional[Violation]:
    """Did a later action place a statement into the container?

    This is how loop interchange discovers that invariant code motion
    broke its "tight loops" post pattern (§5.2): the moved statement now
    sitting between the loops carries an ``mv`` annotation with a later
    stamp.
    """
    if not program.container_alive(container):
        return None
    for member in program.container_list(container):
        if member.sid in exclude:
            continue
        anns = [a for a in store.for_sid(member.sid)
                if a.stamp > stamp and a.kind in ("mv", "add", "cp")]
        if anns:
            a = min(anns, key=lambda x: x.stamp)
            return Violation(
                f"statement S{member.sid} entered the container after t{stamp}",
                action_id=a.action_id, stamp=a.stamp, code="post.intruder",
                witness={"sid": member.sid, "annotation": a.kind})
        # a statement present with no annotation entered via an edit or
        # was always there; the caller decides whether presence alone is
        # a violation.
    return None


def unexplained_occupant(program: Program, store: AnnotationStore,
                         container: Tuple[int, str], stamp: int,
                         exclude: Set[int]) -> Optional[int]:
    """Sid of a container member not in ``exclude`` with no later
    annotation explaining its presence (``None`` if all explained)."""
    if not program.container_alive(container):
        return None
    for member in program.container_list(container):
        if member.sid in exclude:
            continue
        anns = [a for a in store.for_sid(member.sid)
                if a.stamp > stamp and a.kind in ("mv", "add", "cp")]
        if not anns:
            return member.sid
    return None
