"""Loop Interchanging (INX).

Table 2 row::

    pre_pattern:        Tight Loops (L_1, L_2);
    primitive actions:  Copy(L_1, L_tmp);  Modify(L_1, L_2);  Modify(L_2, L_tmp);
    post_pattern:       Tight Loops (L_2, L_1);

We realise the header swap with two ``Modify(header)`` actions: the
paper's ``Copy`` to an off-program temporary ``L_tmp`` exists only to
hold ``L_1``'s header during the swap, and our action records hold the
old header themselves.  (The temporary never appears in the program
text, so annotating a program-resident copy would be artificial; the
inverse-action sequence is identical either way.)

Legality: no dependence between statements of the inner body with
direction vector ``(<, >)`` over the pair — interchange would reverse
it.  The same test re-run on the current nest is the safety re-check:
a ``(<, >)`` dependence appearing later (through edits or undos of
enabling transformations) means the applied interchange now reverses a
dependence of the original program.

Reversibility is the paper's §5.2 example: the post pattern requires the
loops to *still be tightly nested*.  A statement hoisted in between by a
later ICM (its ``mv`` annotation bears a later stamp) is an affecting
transformation that must be undone first.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.depend import interchange_legal
from repro.analysis.incremental import AnalysisCache
from repro.core.actions import HEADER_PATH, HeaderSpec
from repro.core.annotations import AnnotationStore
from repro.core.history import TransformationRecord
from repro.lang.ast_nodes import Loop, Program, expr_vars
from repro.transforms.base import (
    ApplyContext,
    Opportunity,
    ReversibilityResult,
    SafetyResult,
    Transformation,
    Violation,
    modified_after,
    stmt_deleted_after,
)
from repro.transforms.loop_utils import tight_nest


def _rectangular(outer: Loop, inner: Loop) -> bool:
    """Neither loop's bounds may reference the other's index variable.

    Header-swap interchange is only meaning-preserving for rectangular
    nests; a triangular inner bound (``do j = i, n``) would change the
    iteration space.
    """
    inner_vars = (expr_vars(inner.lower) | expr_vars(inner.upper)
                  | expr_vars(inner.step))
    outer_vars = (expr_vars(outer.lower) | expr_vars(outer.upper)
                  | expr_vars(outer.step))
    return outer.var not in inner_vars and inner.var not in outer_vars


def _headers_match(loop: Loop, spec: HeaderSpec) -> bool:
    from repro.lang.ast_nodes import exprs_equal

    return (loop.var == spec.var and exprs_equal(loop.lower, spec.lower)
            and exprs_equal(loop.upper, spec.upper)
            and exprs_equal(loop.step, spec.step))


class LoopInterchanging(Transformation):
    """Swap the headers of two tightly nested loops."""

    name = "inx"
    full_name = "Loop Interchanging"
    # Table 4, row INX (published).
    enables = frozenset({"icm", "fus", "inx"})
    enables_published = True

    def find(self, program: Program, cache: AnalysisCache) -> List[Opportunity]:
        graph = cache.dependences()
        out: List[Opportunity] = []
        for s in program.walk():
            if type(s) is not Loop:  # sequential loops only (not DOALL)
                continue
            inner = tight_nest(program, s)
            if inner is None or inner.var == s.var:
                continue
            if not _rectangular(s, inner):
                continue
            if interchange_legal(graph, s, inner):
                out.append(Opportunity(
                    self.name, {"outer": s.sid, "inner": inner.sid},
                    f"interchange ({s.var}, {inner.var}) at S{s.sid}"))
        return out

    def apply_actions(self, ctx: ApplyContext, opp: Opportunity) -> None:
        outer_sid, inner_sid = opp.params["outer"], opp.params["inner"]
        outer = ctx.program.node(outer_sid)
        inner = ctx.program.node(inner_sid)
        h_outer = HeaderSpec.of(outer)
        h_inner = HeaderSpec.of(inner)
        ctx.record.pre_pattern = {
            "outer": outer_sid, "inner": inner_sid,
            "outer_header": h_outer, "inner_header": h_inner,
        }
        # L_tmp lives inside the first Modify's action record.
        ctx.modify_header(outer_sid, h_inner)
        ctx.modify_header(inner_sid, h_outer)
        ctx.record.post_pattern = {
            "outer": outer_sid, "inner": inner_sid,
            "outer_header": h_inner, "inner_header": h_outer,
        }

    def check_safety(self, ctx, record: TransformationRecord) -> SafetyResult:
        program, cache = ctx.program, ctx.cache
        post = record.post_pattern
        t = record.stamp
        outer_sid, inner_sid = post["outer"], post["inner"]
        for sid in (outer_sid, inner_sid):
            if not program.is_attached(sid):
                if ctx.deleted_by_active(sid, t):
                    return SafetyResult.ok()
                return SafetyResult.broken(Violation(
                    f"interchanged loop S{sid} no longer exists",
                    code="inx.safety.loop-deleted",
                    witness={"sid": sid,
                             "pattern": "Tight Loops (L_1, L_2)"}))
        outer = program.node(outer_sid)
        inner = program.node(inner_sid)
        if not isinstance(outer, Loop) or not isinstance(inner, Loop):
            return SafetyResult.broken(Violation(
                "pattern statements changed kind",
                code="inx.safety.kind-changed",
                witness={"outer_sid": outer_sid, "inner_sid": inner_sid}))
        if outer_sid not in [a for a in program.ancestors(inner_sid)]:
            if ctx.attributed_to_active(inner_sid, t, ("mv",)):
                return SafetyResult.ok()
            return SafetyResult.broken(Violation(
                f"loop S{inner_sid} is no longer nested in S{outer_sid}",
                code="inx.safety.nest-broken",
                witness={"outer_sid": outer_sid, "inner_sid": inner_sid}))
        if not _rectangular(outer, inner):
            if ctx.attributed_to_active(outer_sid, t, ("md",)) or \
                    ctx.attributed_to_active(inner_sid, t, ("md",)):
                return SafetyResult.ok()
            return SafetyResult.broken(Violation(
                "the nest is no longer rectangular — the applied header "
                "swap changes the iteration space",
                code="inx.safety.non-rectangular",
                witness={"outer_sid": outer_sid, "inner_sid": inner_sid}))
        graph = cache.dependences()
        if not interchange_legal(graph, outer, inner):
            # statements placed in the nest by active later transformations
            # were legality-checked by those transformations themselves.
            if ctx.subtree_touched_by_active(outer_sid, t):
                return SafetyResult.ok()
            return SafetyResult.broken(Violation(
                "a dependence now forbids the applied interchange",
                code="inx.safety.dependence-forbids",
                witness={"outer_sid": outer_sid, "inner_sid": inner_sid}))
        return SafetyResult.ok()

    def check_reversibility(self, program: Program, store: AnnotationStore,
                            record: TransformationRecord) -> ReversibilityResult:
        post = record.post_pattern
        outer_sid, inner_sid = post["outer"], post["inner"]
        for sid in (outer_sid, inner_sid):
            v = stmt_deleted_after(program, store, sid, record.stamp)
            if v is not None:
                return ReversibilityResult.blocked(v)
            v = modified_after(program, store, sid, HEADER_PATH, record.stamp)
            if v is not None:
                return ReversibilityResult.blocked(v)
        outer = program.node(outer_sid)
        inner = program.node(inner_sid)
        # post pattern: Tight Loops (L_2, L_1)
        occupants = [m for m in outer.body if m.sid != inner_sid]
        if occupants or inner not in outer.body:
            # someone broke the tight nest; find the responsible action
            for m in occupants:
                anns = [a for a in store.for_sid(m.sid)
                        if a.stamp > record.stamp
                        and a.kind in ("mv", "add", "cp")]
                if anns:
                    a = min(anns, key=lambda x: x.stamp)
                    return ReversibilityResult.blocked(Violation(
                        f"S{m.sid} sits between the interchanged loops",
                        action_id=a.action_id, stamp=a.stamp,
                        code="inx.reversibility.intruder",
                        witness={"sid": m.sid, "annotation": a.kind,
                                 "pattern": "Tight Loops (L_2, L_1)"}))
            return ReversibilityResult.blocked(Violation(
                "the loops are no longer tightly nested",
                code="inx.reversibility.nest-broken",
                witness={"outer_sid": outer_sid, "inner_sid": inner_sid,
                         "pattern": "Tight Loops (L_2, L_1)"}))
        if not _headers_match(outer, post["outer_header"]) or \
                not _headers_match(inner, post["inner_header"]):
            return ReversibilityResult.blocked(Violation(
                "loop headers diverged from the post pattern",
                code="inx.reversibility.header-diverged",
                witness={"outer_sid": outer_sid, "inner_sid": inner_sid}))
        return ReversibilityResult.ok()

    def table2_row(self) -> Dict[str, str]:
        return {
            "transformation": "Loop Interchanging (INX)",
            "pre_pattern": "Tight Loops (L_1, L_2);",
            "primitive_actions": "Copy(L_1, L_tmp); Modify(L_1, L_2); "
                                 "Modify(L_2, L_tmp);",
            "post_pattern": "Tight Loops (L_2, L_1);",
        }

    def table3_row(self) -> Dict[str, List[str]]:
        return {
            "safety": [
                "Add/Move a statement creating a (<,>) dependence into the nest (†)",
                "Delete one of the interchanged loops",
            ],
            "reversibility": [
                "Move/Add a statement between the two loops (breaks tight nesting)",
                "Modify either loop header again",
            ],
        }
