"""Dead Code Elimination (DCE).

Table 2 row::

    pre_pattern:        Stmt S_i;  /* dead code */
    primitive actions:  Delete(S_i);
    post_pattern:       Del_stmt S_i;  ptr orig_loc;

Table 3 row (the one the paper spells out in full):

* **safety-disabling**: a statement ``S_l`` using the value computed by
  ``S_i`` appears on a path ``S_i`` reaches — by adding a statement, by
  modifying a statement into a use, or (edits only, †) by moving a
  statement onto the path.
* **reversibility-disabling**: the original location of ``S_i`` cannot
  be determined — its context was deleted (e.g. the enclosing loop was
  removed) or copied (e.g. the enclosing loop was duplicated by loop
  unrolling).
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.dataflow import analyze_dataflow
from repro.analysis.incremental import AnalysisCache
from repro.core.annotations import AnnotationStore
from repro.core.history import TransformationRecord
from repro.core.locations import Location
from repro.lang.ast_nodes import ArrayRef, Assign, Program, VarRef
from repro.transforms.base import (
    ApplyContext,
    Opportunity,
    ReversibilityResult,
    SafetyResult,
    Transformation,
    Violation,
    container_context_violation,
)


class DeadCodeElimination(Transformation):
    """Delete an assignment whose computed value is never used."""

    name = "dce"
    full_name = "Dead Code Elimination"
    # Table 4, row DCE (published), extended with the parallel columns:
    # deleting a dead in-loop definition can remove a carried scalar
    # dependence (enabling PAR) and can make a remaining scalar
    # write-before-read (enabling PRV).
    enables = frozenset({"dce", "cse", "cpp", "icm", "fus", "inx",
                         "par", "prv"})
    enables_published = True

    # -- find -----------------------------------------------------------------

    def find(self, program: Program, cache: AnalysisCache) -> List[Opportunity]:
        df = cache.dataflow()
        out: List[Opportunity] = []
        for s in program.walk():
            if not isinstance(s, Assign):
                continue
            if isinstance(s.target, VarRef):
                key = s.target.name
            elif isinstance(s.target, ArrayRef):
                key = "@" + s.target.name
            else:  # pragma: no cover - grammar is closed
                continue
            if df.is_dead(s.sid, key):
                out.append(Opportunity(
                    self.name, {"sid": s.sid},
                    f"S{s.sid} defines unused {key.lstrip('@')}"))
        return out

    # -- apply ---------------------------------------------------------------------

    def apply_actions(self, ctx: ApplyContext, opp: Opportunity) -> None:
        sid = opp.params["sid"]
        stmt = ctx.program.node(sid)
        if isinstance(stmt.target, VarRef):
            target = stmt.target.name
        else:
            target = "@" + stmt.target.name
        ctx.record.pre_pattern = {"sid": sid, "target": target}
        act = ctx.delete(sid)
        ctx.record.post_pattern = {
            "sid": sid,
            "orig_loc": act.from_loc,
            "target": target,
        }

    # -- safety -----------------------------------------------------------------------

    def check_safety(self, ctx, record: TransformationRecord) -> SafetyResult:
        """Probe whether the deleted statement would still be dead.

        The deleted statement is temporarily restored at its original
        location (bypassing history), liveness is recomputed, and the
        statement removed again.  This implements Table 3's condition
        ``∃ S_l ∋ (S_i δ S_l)`` exactly: any use the restored value would
        reach disables the transformation's safety.  (No benign
        attribution is needed: a legal transformation can never introduce
        a use of a value that reached no use — it would sever nothing.)
        """
        program = ctx.program
        sid = record.post_pattern["sid"]
        loc: Location = record.post_pattern["orig_loc"]
        target: str = record.post_pattern["target"]
        if program.is_attached(sid):
            return SafetyResult.broken(Violation(
                f"deleted statement S{sid} is unexpectedly attached",
                code="dce.safety.reattached", witness={"sid": sid}))
        resolved = loc.resolve(program)
        if resolved is None:
            # the context is gone entirely; the deleted code has no
            # restore point and no reachable uses — still safe.
            return SafetyResult.ok()
        ref, idx = resolved
        with program.probe():
            program.insert(ref, idx, program.node(sid))
            try:
                df = analyze_dataflow(program)
                dead = df.is_dead(sid, target)
            finally:
                program.detach(sid)
        if dead:
            return SafetyResult.ok()
        return SafetyResult.broken(Violation(
            f"a use of {target.lstrip('@')} now reaches the deleted "
            f"statement S{sid}",
            code="dce.safety.use-reaches",
            witness={"sid": sid, "target": target.lstrip("@"),
                     "pattern": "∃ S_l ∋ (S_i δ S_l)"}))

    # -- reversibility ---------------------------------------------------------------------

    def check_reversibility(self, program: Program, store: AnnotationStore,
                            record: TransformationRecord) -> ReversibilityResult:
        loc: Location = record.post_pattern["orig_loc"]
        v = container_context_violation(program, store, loc, record.stamp)
        if v is not None:
            return ReversibilityResult.blocked(v)
        if loc.resolve(program) is None:
            return ReversibilityResult.blocked(Violation(
                "original location is unresolvable",
                code="dce.reversibility.location-unresolvable",
                witness={"container": list(loc.container)}))
        return ReversibilityResult.ok()

    # -- documentation ------------------------------------------------------------------------

    def table2_row(self) -> Dict[str, str]:
        return {
            "transformation": "Dead Code Elimination (DCE)",
            "pre_pattern": "Stmt S_i; /*dead code*/",
            "primitive_actions": "Delete(S_i);",
            "post_pattern": "Del_stmt S_i; ptr orig_loc;",
        }

    def table3_row(self) -> Dict[str, List[str]]:
        return {
            "safety": [
                "Add a statement S_l that uses value computed by S_i",
                "Modify a statement S_l that uses value computed by S_i",
                "Move a statement S_l on the path so that S_i reaches (†)",
            ],
            "reversibility": [
                "Delete context of the location (e.g. delete the loop it belongs to)",
                "Copy context of the location (e.g. copy the loop it belongs to by LUR)",
            ],
        }
