"""Loop Unrolling (LUR), by a factor of two.

Pattern::

    pre_pattern:        Loop L (const bounds, even trip count,
                        straight-line body);
    primitive actions:  Copy(S, L.end) for each body statement S;
                        Modify(i-occurrence, i + step) in every copy;
                        Modify(L.header, step = 2*step);
    post_pattern:       Loop L with body ++ shifted copies, doubled step;

LUR is the paper's canonical *context-copying* transformation: its
``Copy`` actions leave ``cps`` annotations on the original body
statements, which is exactly what makes an earlier DCE/ICM in that loop
irreversible ("copy context of the location ... by LUR", Table 3) until
the unrolling itself is undone.

Restrictions (conservative, for exact semantics preservation):

* constant ``lower``/``upper``/``step`` with an even, positive trip
  count — no remainder loop is needed;
* the body is straight-line assignments (no nested control, no I/O);
* no body statement assigns the loop variable.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.incremental import AnalysisCache
from repro.core.actions import HEADER_PATH, HeaderSpec
from repro.core.annotations import AnnotationStore
from repro.core.history import TransformationRecord
from repro.core.locations import Location
from repro.lang.ast_nodes import (
    BinOp,
    Const,
    Loop,
    Program,
    VarRef,
    stmt_defuse,
    walk_expr,
)
from repro.transforms.base import (
    ApplyContext,
    Opportunity,
    ReversibilityResult,
    SafetyResult,
    Transformation,
    Violation,
    modified_after,
    stmt_deleted_after,
    subtree_touched_after,
)
from repro.transforms.loop_utils import const_trip_count, is_simple_body


def _unrollable(loop: Loop) -> bool:
    trip = const_trip_count(loop)
    if trip is None or trip < 2 or trip % 2 != 0:
        return False
    if not loop.body or not is_simple_body(loop):
        return False
    for s in loop.body:
        if loop.var in stmt_defuse(s).defs:
            return False
    return True


def _var_paths(stmt, name: str) -> List[tuple]:
    """Paths of every occurrence of scalar ``name`` in the statement."""
    out = []
    for slot, root in stmt.expr_slots():
        for sub_path, node in walk_expr(root):
            if isinstance(node, VarRef) and node.name == name:
                out.append((slot,) + sub_path)
    return out


class LoopUnrolling(Transformation):
    """Duplicate the loop body and double the step."""

    name = "lur"
    full_name = "Loop Unrolling"
    # Derived row (not published in Table 4): duplicated bodies expose
    # identical expressions (CSE) and constant arithmetic (CFO).
    enables = frozenset({"cse", "cfo"})
    enables_published = False

    def find(self, program: Program, cache: AnalysisCache) -> List[Opportunity]:
        out: List[Opportunity] = []
        for s in program.walk():
            if type(s) is Loop and _unrollable(s):  # sequential only
                out.append(Opportunity(
                    self.name, {"loop": s.sid},
                    f"unroll S{s.sid} ({s.var}) by 2"))
        return out

    def apply_actions(self, ctx: ApplyContext, opp: Opportunity) -> None:
        loop_sid = opp.params["loop"]
        loop = ctx.program.node(loop_sid)
        step = loop.step.value
        originals = [m.sid for m in loop.body]
        ctx.record.pre_pattern = {
            "loop": loop_sid, "originals": list(originals),
            "header": HeaderSpec.of(loop),
        }
        clones: List[int] = []
        for sid in originals:
            act = ctx.copy(sid, Location.at(ctx.program, (loop_sid, "body"),
                                            len(loop.body)))
            clones.append(act.sid)
        # shift every loop-variable occurrence in the copies by one step
        for csid in clones:
            stmt = ctx.program.node(csid)
            for path in _var_paths(stmt, loop.var):
                ctx.modify(csid, path,
                           BinOp("+", VarRef(loop.var), Const(step)))
        new_header = HeaderSpec(loop.var, loop.lower.clone(),
                                loop.upper.clone(), Const(2 * step))
        ctx.modify_header(loop_sid, new_header)
        ctx.record.post_pattern = {
            "loop": loop_sid, "originals": list(originals),
            "clones": clones, "factor": 2,
            "orig_step": step, "header": new_header,
        }

    def check_safety(self, ctx, record: TransformationRecord) -> SafetyResult:
        program = ctx.program
        post = record.post_pattern
        t = record.stamp
        loop_sid = post["loop"]
        if not program.is_attached(loop_sid):
            return SafetyResult.ok()
        loop = program.node(loop_sid)
        if not isinstance(loop, Loop):
            return SafetyResult.broken(Violation(
                "unrolled statement is no longer a loop",
                code="lur.safety.kind-changed",
                witness={"loop_sid": loop_sid}))
        header_rewritten = ctx.attributed_to_active(loop_sid, t, ("md",))
        if not (isinstance(loop.lower, Const) and isinstance(loop.upper, Const)
                and isinstance(loop.step, Const)):
            if header_rewritten:
                return SafetyResult.ok()  # e.g. INX swapped the headers
            return SafetyResult.broken(Violation(
                "loop bounds are no longer constant",
                code="lur.safety.non-constant-bounds",
                witness={"loop_sid": loop_sid}))
        orig_step = post["orig_step"]
        if loop.step.value != 2 * orig_step:
            if header_rewritten:
                return SafetyResult.ok()
            return SafetyResult.broken(Violation(
                "loop step diverged from 2x original",
                code="lur.safety.step-diverged",
                witness={"loop_sid": loop_sid, "orig_step": orig_step}))
        trip = (loop.upper.value - loop.lower.value) // orig_step + 1
        if trip < 2 or trip % 2 != 0:
            if header_rewritten:
                return SafetyResult.ok()
            return SafetyResult.broken(Violation(
                "original trip count is no longer even — the unrolled loop "
                "would drop iterations",
                code="lur.safety.odd-trip-count",
                witness={"loop_sid": loop_sid, "trip": trip}))
        return SafetyResult.ok()

    def check_reversibility(self, program: Program, store: AnnotationStore,
                            record: TransformationRecord) -> ReversibilityResult:
        post = record.post_pattern
        loop_sid = post["loop"]
        v = stmt_deleted_after(program, store, loop_sid, record.stamp)
        if v is not None:
            return ReversibilityResult.blocked(v)
        v = modified_after(program, store, loop_sid, HEADER_PATH, record.stamp)
        if v is not None:
            return ReversibilityResult.blocked(v)
        for csid in post["clones"]:
            v = stmt_deleted_after(program, store, csid, record.stamp)
            if v is not None:
                return ReversibilityResult.blocked(v)
            if program.parent_of(csid) != (loop_sid, "body"):
                return ReversibilityResult.blocked(Violation(
                    f"unrolled copy S{csid} left the loop body",
                    code="lur.reversibility.clone-left",
                    witness={"sid": csid, "loop_sid": loop_sid}))
            # later transformations inside a copy must be undone before
            # the copy can be deleted.
            v = subtree_touched_after(program, store, csid, record.stamp)
            if v is not None:
                return ReversibilityResult.blocked(v)
        return ReversibilityResult.ok()

    def table2_row(self) -> Dict[str, str]:
        return {
            "transformation": "Loop Unrolling (LUR)",
            "pre_pattern": "Loop L: const bounds, even trip, simple body;",
            "primitive_actions": "Copy(S, L.end) ∀ S ∈ body; "
                                 "Modify(i, i+step) in copies; "
                                 "Modify(L.step, 2*step);",
            "post_pattern": "Loop L: body ++ shifted copies, doubled step;",
        }

    def table3_row(self) -> Dict[str, List[str]]:
        return {
            "safety": [
                "Modify the loop bounds so the trip count becomes odd (†)",
                "Modify the loop step again",
            ],
            "reversibility": [
                "Delete/Move one of the unrolled copies",
                "Modify anything inside an unrolled copy (later transformation)",
                "Modify the loop header again",
            ],
        }
