"""Program locations with snapshot-based re-resolution.

The inverse of ``Delete(a)`` is ``Add(orig_location, -, a)`` (Table 1).
A raw ``(container, index)`` pair is too brittle: by the time the delete
is undone, other statements may have been inserted or removed around the
original position.  A :class:`Location` therefore snapshots the *entire
ordered sibling list* at capture time, split into the sids before and
after the position, and re-resolves against whichever of them are still
present.

Two restorations interleaving in the same neighbourhood can still be
mutually ambiguous — statement X sits in the gap, and X was absent when
our location was captured.  In that case X's *own* history records the
relative order (our sid appears in X's before/after snapshot), so
resolution accepts an ``orderer`` callback that consults the shared
history (:func:`make_sibling_orderer`).  This is exactly the paper's
claim that "with appropriate transformation history maintained (e.g.,
the original locations of moved and deleted statements), the reversal
... can be performed immediately" (§2) — the history carries enough to
reconstruct original positions.

Resolution *fails* (returns ``None``) only when the container itself is
no longer part of the live program — the "delete context of the
location" reversibility-disabling condition (Table 3).  The companion
condition, "copy context of the location", is detected separately by
the post-pattern checks in :mod:`repro.transforms.base`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.lang.ast_nodes import ContainerRef, Program

#: Relative-order verdicts an orderer can return for a gap statement.
X_FIRST = "x_first"      # the gap statement precedes the restored one
SELF_FIRST = "self_first"  # the restored statement precedes the gap one

#: ``orderer(gap_sid, self_sid) -> X_FIRST | SELF_FIRST | None``
Orderer = Callable[[int, int], Optional[str]]


@dataclass(frozen=True)
class Location:
    """A position inside a statement container.

    Attributes
    ----------
    container:
        ``(sid, slot)`` of the statement list (the program root is
        ``(ROOT_SID, "body")``).
    index:
        The position at capture time (last-resort fallback).
    before_sids / after_sids:
        The full ordered sibling snapshot at capture time, split at the
        position.
    """

    container: ContainerRef
    index: int
    before_sids: Tuple[int, ...] = ()
    after_sids: Tuple[int, ...] = ()

    @property
    def prev_sid(self) -> Optional[int]:
        """The immediately preceding sibling at capture time."""
        return self.before_sids[-1] if self.before_sids else None

    @property
    def next_sid(self) -> Optional[int]:
        """The immediately following sibling at capture time."""
        return self.after_sids[0] if self.after_sids else None

    # -- construction -------------------------------------------------------

    @staticmethod
    def of_stmt(program: Program, sid: int) -> "Location":
        """Capture the current location of an attached statement."""
        ref = program.parent_of(sid)
        if ref is None:
            raise ValueError(f"statement {sid} is detached")
        lst = program.container_list(ref)
        idx = program.index_in_container(sid)
        return Location(ref, idx,
                        tuple(s.sid for s in lst[:idx]),
                        tuple(s.sid for s in lst[idx + 1:]))

    @staticmethod
    def at(program: Program, ref: ContainerRef, index: int) -> "Location":
        """Capture an insertion point ``(ref, index)`` with its snapshot."""
        lst = program.container_list(ref)
        index = max(0, min(index, len(lst)))
        return Location(ref, index,
                        tuple(s.sid for s in lst[:index]),
                        tuple(s.sid for s in lst[index:]))

    @staticmethod
    def before(program: Program, sid: int) -> "Location":
        """The insertion point immediately before statement ``sid``."""
        ref = program.parent_of(sid)
        if ref is None:
            raise ValueError(f"statement {sid} is detached")
        return Location.at(program, ref, program.index_in_container(sid))

    @staticmethod
    def after(program: Program, sid: int) -> "Location":
        """The insertion point immediately after statement ``sid``."""
        ref = program.parent_of(sid)
        if ref is None:
            raise ValueError(f"statement {sid} is detached")
        return Location.at(program, ref, program.index_in_container(sid) + 1)

    # -- resolution -----------------------------------------------------------

    def resolve(self, program: Program, *, orderer: Optional[Orderer] = None,
                self_sid: Optional[int] = None,
                ) -> Optional[Tuple[ContainerRef, int]]:
        """Re-resolve to a live ``(container, index)`` insertion point.

        Returns ``None`` when the container is no longer attached.  The
        position honours every sibling from the snapshot that is still
        present; statements *not* in the snapshot (inserted since the
        capture) are ordered via ``orderer`` when their history knows the
        relative order, and are otherwise left after the insertion point.
        """
        if not program.container_alive(self.container):
            return None
        lst = program.container_list(self.container)
        pos_of = {s.sid: i for i, s in enumerate(lst)}
        lo = 0
        for sid in self.before_sids:
            if sid in pos_of:
                lo = max(lo, pos_of[sid] + 1)
        hi = len(lst)
        for sid in self.after_sids:
            if sid in pos_of:
                hi = min(hi, pos_of[sid])
        if hi < lo:
            # siblings were reordered around the gap; trust the later bound
            return (self.container, lo)
        pos = lo
        if orderer is not None and self_sid is not None:
            for i in range(lo, hi):
                verdict = orderer(lst[i].sid, self_sid)
                if verdict == X_FIRST:
                    pos = i + 1
                elif verdict == SELF_FIRST:
                    break
        elif lo == 0 and hi == len(lst) and not pos_of:
            # nothing from the snapshot survives: fall back to the raw index
            pos = max(0, min(self.index, len(lst)))
        return (self.container, pos)

    def describe(self, program: Program) -> str:
        """Human-readable rendering for reports and error messages."""
        sid, slot = self.container
        where = "program" if sid == 0 else f"{type(program.node(sid)).__name__}#{sid}.{slot}"
        return f"{where}[{self.index}]"


def make_sibling_orderer(history) -> Orderer:
    """Build an orderer that consults the shared transformation history.

    Every location snapshot in the history totally orders the statements
    it saw (``before + [located stmt] + after``).  We combine all
    snapshots into a precedence relation — for each statement pair, the
    *latest* snapshot containing both wins (statements legitimately move,
    so old evidence is superseded) — and answer relative-order queries by
    transitive reachability.  Transitivity matters: a statement created
    *after* another was deleted shares no snapshot with it, but both
    share snapshots with common neighbours (e.g. a strip-mining outer
    loop is tied to the loop it wrapped, which the deleted statement's
    own snapshot orders).
    """
    cache = {"key": None, "succ": None}

    def build():
        # pair -> (action_id, "<" or ">") with latest action winning
        best = {}
        n_actions = 0
        for rec in history.all_records():
            for act in rec.actions:
                n_actions += 1
                for loc in (act.from_loc, act.to_loc):
                    if loc is None:
                        continue
                    seq = list(loc.before_sids) + [act.sid] + list(loc.after_sids)
                    for i, u in enumerate(seq):
                        for v in seq[i + 1:]:
                            if u == v:
                                continue
                            key = (u, v) if u < v else (v, u)
                            order = "<" if u < v else ">"
                            prev = best.get(key)
                            if prev is None or act.action_id >= prev[0]:
                                best[key] = (act.action_id, order)
        succ = {}
        for (u, v), (_aid, order) in best.items():
            a, b = (u, v) if order == "<" else (v, u)
            succ.setdefault(a, set()).add(b)
        return n_actions, succ

    def reachable(succ, src: int, dst: int) -> bool:
        seen = {src}
        stack = [src]
        while stack:
            cur = stack.pop()
            for nxt in succ.get(cur, ()):
                if nxt == dst:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    def orderer(x_sid: int, self_sid: int) -> Optional[str]:
        key = sum(len(r.actions) for r in history.all_records())
        if cache["key"] != key:
            cache["key"] = key
            _n, cache["succ"] = build()
        succ = cache["succ"]
        x_first = reachable(succ, x_sid, self_sid)
        self_first = reachable(succ, self_sid, x_sid)
        if x_first and not self_first:
            return X_FIRST
        if self_first and not x_first:
            return SELF_FIRST
        return None

    return orderer
