"""Transformation history: records, order stamps, pre/post patterns.

A :class:`TransformationRecord` is the unit the undo engines operate on:
one applied transformation = one order stamp = one contiguous sequence of
primitive-action records (§4.1).  The record also stores the
transformation's ``pre_pattern`` and ``post_pattern`` (Table 2) as plain
dictionaries whose schema is owned by the transformation class — the core
machinery never interprets them, preserving transformation independence.

User edits are recorded here too (with ``name="edit"``): they consume an
order stamp and leave annotations like any transformation, but they are
not undoable through the transformation engines (the paper treats edits
as the *trigger* for removing unsafe transformations, not as history).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.core.actions import ActionRecord


@dataclass
class TransformationRecord:
    """One applied transformation (or user edit)."""

    #: the order stamp ``t`` — position in the application sequence.
    stamp: int
    #: transformation name (``"dce"``, ``"inx"``, ... or ``"edit"``).
    name: str
    #: primitive actions, in application order.
    actions: List[ActionRecord] = field(default_factory=list)
    #: Table 2 pre pattern (schema owned by the transformation class).
    pre_pattern: Dict = field(default_factory=dict)
    #: Table 2 post pattern.
    post_pattern: Dict = field(default_factory=dict)
    #: free-form parameters of the application (e.g. unroll factor).
    params: Dict = field(default_factory=dict)
    #: False once the transformation has been undone.
    active: bool = True

    @property
    def is_edit(self) -> bool:
        return self.name == "edit"

    def describe(self) -> str:
        """Compact one-line rendering for reports and the CLI."""
        acts = ", ".join(a.describe() for a in self.actions)
        return f"t{self.stamp}:{self.name}[{acts}]"


class History:
    """The ordered sequence of applied transformations ``T = {t_1..t_n}``."""

    def __init__(self) -> None:
        self._records: List[TransformationRecord] = []
        self._by_stamp: Dict[int, TransformationRecord] = {}
        self._next_stamp = 1
        #: append-only journal of stamps whose record content changed
        #: (created, deactivated, or mutated through the action applier).
        #: Incremental consumers — the fingerprint maintainer, delta
        #: snapshots — keep a cursor into this list and re-digest only
        #: the records named after it.
        self.mutations: List[int] = []

    def note_mutation(self, stamp: int) -> None:
        """Record that the record with ``stamp`` changed content."""
        self.mutations.append(stamp)

    @classmethod
    def restore(cls, records: Iterable[TransformationRecord]) -> "History":
        """Rebuild a history from deserialized records (stamp order).

        Records are never removed from a history — undone ones are only
        deactivated — so the next free stamp is derivable as
        ``max(stamps) + 1``.  Used by :mod:`repro.service.serde` when a
        durable session is reopened.
        """
        hist = cls()
        for rec in records:
            if rec.stamp in hist._by_stamp:
                raise ValueError(f"duplicate stamp {rec.stamp} in records")
            hist._records.append(rec)
            hist._by_stamp[rec.stamp] = rec
        if hist._records:
            hist._next_stamp = max(hist._by_stamp) + 1
        return hist

    def new_record(self, name: str, **params) -> TransformationRecord:
        """Create, register and return a record with the next order stamp."""
        rec = TransformationRecord(stamp=self._next_stamp, name=name,
                                   params=dict(params))
        self._next_stamp += 1
        self._records.append(rec)
        self._by_stamp[rec.stamp] = rec
        self.mutations.append(rec.stamp)
        return rec

    def by_stamp(self, stamp: int) -> TransformationRecord:
        """The record with order stamp ``stamp`` (KeyError if unknown)."""
        return self._by_stamp[stamp]

    def has_stamp(self, stamp: int) -> bool:
        """Whether a record with this stamp exists."""
        return stamp in self._by_stamp

    def all_records(self) -> List[TransformationRecord]:
        """Every record ever created, in stamp order (including undone)."""
        return list(self._records)

    def active(self) -> List[TransformationRecord]:
        """Currently applied transformations, in stamp order (edits excluded)."""
        return [r for r in self._records if r.active and not r.is_edit]

    def active_after(self, stamp: int) -> List[TransformationRecord]:
        """Active transformations with a stamp strictly greater than ``stamp``.

        Only these can be *affected* by undoing ``stamp`` (§4.2: safety of
        ``t_k`` can only be disabled by reversing a *preceding* ``t_i``).
        """
        return [r for r in self._records
                if r.active and not r.is_edit and r.stamp > stamp]

    def deactivate(self, stamp: int) -> None:
        """Mark the record with ``stamp`` as undone."""
        self._by_stamp[stamp].active = False
        self.mutations.append(stamp)

    def stamp_of_action(self, action_id: int) -> Optional[int]:
        """Map a primitive-action id back to its transformation's stamp.

        This is line 9 of the UNDO algorithm: "determine the
        transformation that causes the action"."""
        for rec in self._records:
            for act in rec.actions:
                if act.action_id == action_id:
                    return rec.stamp
        return None

    def __len__(self) -> int:
        return len(self._records)

    def describe(self) -> str:
        """Compact one-line rendering for reports and the CLI."""
        lines = []
        for r in self._records:
            flag = "" if r.active else " (undone)"
            lines.append(f"  {r.describe()}{flag}")
        return "\n".join(lines)
