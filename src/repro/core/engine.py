"""The user-facing transformation engine.

Ties the pieces together the way the paper's PIVOT environment [5] does:
a program, its two-level representation (annotations included), the
analysis cache, the transformation catalog, and the undo engines.

Typical session::

    from repro import TransformationEngine, parse_program

    engine = TransformationEngine(parse_program(source))
    opportunities = engine.find("cse")
    record = engine.apply(opportunities[0])
    ...
    engine.undo(record.stamp)        # independent order (Figure 4)
    engine.undo_reverse_to(stamp)    # LIFO baseline of [5]
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.analysis.incremental import AnalysisCache
from repro.core.actions import ActionApplier
from repro.core.annotations import AnnotationStore
from repro.core.events import EventLog
from repro.core.history import History, TransformationRecord
from repro.core.reverse_undo import ReverseUndoEngine, ReverseUndoReport
from repro.core.undo import UndoEngine, UndoError, UndoReport, UndoStrategy
from repro.lang.ast_nodes import Program
from repro.lang.printer import format_program
from repro.transforms.base import (
    ApplyContext,
    CheckContext,
    Opportunity,
    SafetyResult,
)


class ApplyError(RuntimeError):
    """Raised when a transformation cannot be applied."""


class TransformationEngine:
    """Apply, inspect, and undo transformations on one program."""

    def __init__(self, program: Program,
                 strategy: Optional[UndoStrategy] = None,
                 extra_transformations: Optional[Sequence] = None,
                 *, history: Optional[History] = None,
                 store: Optional[AnnotationStore] = None,
                 events: Optional[EventLog] = None):
        from repro.transforms.registry import REGISTRY

        from repro.core.locations import make_sibling_orderer

        self.program = program
        # a private copy so per-engine registration never leaks globally
        self.registry = dict(REGISTRY)
        # ``history``/``store``/``events`` let the durable-session layer
        # rebuild an engine around previously persisted state
        # (:func:`repro.service.serde.engine_from_doc`); normal sessions
        # leave them None and start empty.
        self.applier = ActionApplier(program, store=store, events=events)
        self.history = history if history is not None else History()
        self.applier.orderer = make_sibling_orderer(self.history)
        #: journal hook point: callables invoked with one logical-command
        #: dict after every top-level ``apply``/``undo``/``undo_reverse_to``
        #: — including *failed* ones that consumed an order stamp or
        #: mutated state, so a journal replay reproduces stamps exactly.
        self.command_observers: List[Callable[[Dict], None]] = []
        self.cache = AnalysisCache(program, events=self.applier.events)
        self.strategy = strategy if strategy is not None else UndoStrategy()
        self._undo_engine = UndoEngine(program, self.applier, self.history,
                                       self.cache, self.registry,
                                       self.strategy)
        self._reverse_engine = ReverseUndoEngine(program, self.applier,
                                                 self.history, self.cache)
        if extra_transformations:
            for t in extra_transformations:
                self.register(t)

    def register(self, transformation) -> None:
        """Add a transformation (e.g. spec-compiled) to this engine.

        Registered transformations are first-class: ``find``/``apply``
        offer them and both undo engines handle them through the same
        transformation-independent machinery.
        """
        if transformation.name in self.registry:
            raise ApplyError(
                f"transformation {transformation.name!r} already registered")
        self.registry[transformation.name] = transformation

    # -- convenience accessors -----------------------------------------------

    @property
    def store(self) -> AnnotationStore:
        return self.applier.store

    @property
    def events(self) -> EventLog:
        return self.applier.events

    def source(self, show_labels: bool = False) -> str:
        """Current program text."""
        return format_program(self.program, show_labels=show_labels)

    def active_transformations(self) -> List[TransformationRecord]:
        """Currently applied transformations, in stamp order."""
        return self.history.active()

    # -- applying ---------------------------------------------------------------

    def find(self, name: str) -> List[Opportunity]:
        """Opportunities for transformation ``name`` in the current program."""
        return self.registry[name].find(self.program, self.cache)

    def find_all(self) -> Dict[str, List[Opportunity]]:
        """Opportunities for every registered transformation."""
        return {name: t.find(self.program, self.cache)
                for name, t in self.registry.items()}

    def _notify_command(self, cmd: Dict) -> None:
        """Tell every journal observer about a completed logical command."""
        for observer in list(self.command_observers):
            observer(cmd)

    def apply(self, opportunity: Opportunity) -> TransformationRecord:
        """Apply a previously found opportunity, recording history."""
        transform = self.registry[opportunity.name]
        rec = self.history.new_record(opportunity.name, **opportunity.params)
        ctx = ApplyContext(self.program, self.applier, self.cache, rec)
        try:
            transform.apply_actions(ctx, opportunity)
        except Exception as exc:
            # roll the partial application back so the program stays sound
            for act in reversed(rec.actions):
                self.applier.invert(act, rec.stamp)
            self.history.deactivate(rec.stamp)
            # the failed record consumed a stamp and action ids — journal
            # it so a replay re-runs (and re-fails) it deterministically
            self._notify_command({"op": "apply", "name": opportunity.name,
                                  "params": dict(opportunity.params),
                                  "stamp": rec.stamp, "failed": True})
            raise ApplyError(
                f"applying {opportunity.name} failed: {exc}") from exc
        self._notify_command({"op": "apply", "name": opportunity.name,
                              "params": dict(opportunity.params),
                              "stamp": rec.stamp})
        return rec

    def apply_first(self, name: str, **match) -> TransformationRecord:
        """Find-and-apply the first opportunity whose params match ``match``."""
        for opp in self.find(name):
            if all(opp.params.get(k) == v for k, v in match.items()):
                return self.apply(opp)
        raise ApplyError(f"no {name} opportunity matching {match!r}")

    # -- safety inspection -----------------------------------------------------------

    def check_context(self) -> CheckContext:
        """The context safety re-checks run against."""
        return CheckContext(program=self.program, cache=self.cache,
                            store=self.store, history=self.history)

    def check_safety(self, stamp: int) -> SafetyResult:
        """Re-validate one applied transformation's safety right now."""
        rec = self.history.by_stamp(stamp)
        return self.registry[rec.name].check_safety(self.check_context(), rec)

    def unsafe_transformations(self) -> List[int]:
        """Stamps of active transformations whose safety no longer holds."""
        out = []
        for rec in self.history.active():
            if not self.check_safety(rec.stamp).safe:
                out.append(rec.stamp)
        return out

    # -- undoing -----------------------------------------------------------------------

    def undo(self, stamp: int) -> UndoReport:
        """Independent-order undo (Figure 4)."""
        try:
            report = self._undo_engine.undo(stamp)
        except UndoError:
            # a cascade can commit partial undos before the failure;
            # journal the failed command so replay reproduces that state
            self._notify_command({"op": "undo", "stamp": stamp,
                                  "failed": True})
            raise
        self._notify_command({"op": "undo", "stamp": stamp,
                              "undone": list(report.undone)})
        return report

    def undo_reverse_to(self, stamp: int) -> ReverseUndoReport:
        """Reverse-order (LIFO) undo baseline of [5]."""
        try:
            report = self._reverse_engine.undo_to(stamp)
        except UndoError:
            self._notify_command({"op": "undo_lifo", "stamp": stamp,
                                  "failed": True})
            raise
        self._notify_command({"op": "undo_lifo", "stamp": stamp,
                              "undone": list(report.undone)})
        return report

    def check_reversibility(self, stamp: int):
        """Post-pattern validation of one applied transformation."""
        rec = self.history.by_stamp(stamp)
        return self.registry[rec.name].check_reversibility(
            self.program, self.store, rec)
