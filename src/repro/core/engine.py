"""The user-facing transformation engine.

Ties the pieces together the way the paper's PIVOT environment [5] does:
a program, its two-level representation (annotations included), the
analysis cache, the transformation catalog, and the undo engines.

Typical session::

    from repro import TransformationEngine, parse_program

    engine = TransformationEngine(parse_program(source))
    opportunities = engine.find("cse")
    record = engine.apply(opportunities[0])
    ...
    engine.undo(record.stamp)        # independent order (Figure 4)
    engine.undo_reverse_to(stamp)    # LIFO baseline of [5]

Every state change flows through ONE transactional path,
:meth:`TransformationEngine.execute`, which takes a typed
:class:`repro.core.commands.Command`: ``apply``/``undo``/
``undo_reverse_to`` are thin constructors over it, and so are user
edits (:class:`repro.edit.edits.EditSession`), the line-protocol
server, and journal replay.  ``execute_batch`` runs a group of
commands as a single journaled unit.
"""

from __future__ import annotations

import logging
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.incremental import AnalysisCache, WorkCounters
from repro.core.actions import ActionApplier
from repro.core.annotations import AnnotationStore
from repro.core.commands import (
    ApplyCommand,
    ApplyError,
    BatchCommand,
    BatchResult,
    Command,
    RegistryError,
    UndoCommand,
    UndoLifoCommand,
)
from repro.core.events import EventLog
from repro.core.history import History, TransformationRecord
from repro.core.reverse_undo import ReverseUndoEngine, ReverseUndoReport
from repro.core.undo import UndoEngine, UndoReport, UndoStrategy
from repro.lang.ast_nodes import Program
from repro.lang.printer import format_program
from repro.obs import metrics as obs_metrics
from repro.obs.profiler import Profiler
from repro.obs.trace import Tracer, current_request
from repro.transforms.base import (
    CheckContext,
    Opportunity,
    SafetyResult,
)

__all__ = ["ApplyError", "RegistryError", "TransformationEngine"]

#: where isolated observer failures are logged (see ``_notify``).
_log = logging.getLogger("repro.obs")


class TransformationEngine:
    """Apply, inspect, and undo transformations on one program."""

    def __init__(self, program: Program,
                 strategy: Optional[UndoStrategy] = None,
                 extra_transformations: Optional[Sequence] = None,
                 *, history: Optional[History] = None,
                 store: Optional[AnnotationStore] = None,
                 events: Optional[EventLog] = None,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[obs_metrics.MetricsRegistry] = None,
                 profiler: Optional[Profiler] = None):
        from repro.transforms.registry import REGISTRY

        from repro.core.locations import make_sibling_orderer

        self.program = program
        # a private copy so per-engine registration never leaks globally
        self.registry = dict(REGISTRY)
        # ``history``/``store``/``events`` let the durable-session layer
        # rebuild an engine around previously persisted state
        # (:func:`repro.service.serde.engine_from_doc`); normal sessions
        # leave them None and start empty.
        self.applier = ActionApplier(program, store=store, events=events)
        self.history = history if history is not None else History()
        self.applier.orderer = make_sibling_orderer(self.history)
        # dirty-record tracking for the incremental fingerprint: any
        # action that mutates a record's content marks its stamp.
        self.applier.note = self.history.note_mutation
        #: journal hook point: callables invoked with the executed
        #: :class:`~repro.core.commands.Command` after every top-level
        #: command — including *failed* ones that consumed an order
        #: stamp or mutated state, so a journal replay reproduces
        #: stamps exactly.  During a batch, sub-command notifications
        #: are collected into the enclosing batch instead.
        self.command_observers: List[Callable[[Command], None]] = []
        #: batch collection stack: while non-empty, notifications go to
        #: the innermost batch's group instead of the observers.
        self._batch_sinks: List[List[Command]] = []
        #: span source; defaults to the shared zero-cost disabled tracer
        #: (``Tracer.disabled``) so untraced engines pay ~nothing.
        self.tracer = tracer if tracer is not None else Tracer.disabled
        #: counter/histogram home; defaults to the process-wide registry.
        self.metrics = metrics if metrics is not None \
            else obs_metrics.REGISTRY
        if self.tracer.enabled and self.tracer.recorder.drop_counter is None:
            # ring wrap-around is otherwise silent; the counter is the
            # only record of how many spans the flight recorder lost
            self.tracer.recorder.drop_counter = self.metrics.counter(
                "repro_trace_dropped_total",
                "spans evicted off the flight-recorder ring")
        #: CPU sampler; defaults to the shared zero-cost disabled
        #: profiler (``Profiler.disabled``), mirroring the tracer.  An
        #: enabled profiler's sample drops are counted the same way the
        #: flight recorder's span drops are.
        self.profiler = profiler if profiler is not None \
            else Profiler.disabled
        if self.profiler.enabled and self.profiler.drop_counter is None:
            self.profiler.drop_counter = self.metrics.counter(
                "repro_prof_dropped_total",
                "profiler samples lost to overrun ticks or "
                "stack-table overflow")
        #: recent isolated observer failures, newest last — a raising
        #: ``command_observers`` callback is logged and recorded here,
        #: never allowed to corrupt the already-committed command.
        self.observer_errors: "deque[Tuple[str, BaseException]]" = \
            deque(maxlen=16)
        self.cache = AnalysisCache(program, events=self.applier.events)
        self.strategy = strategy if strategy is not None else UndoStrategy()
        self._undo_engine = UndoEngine(program, self.applier, self.history,
                                       self.cache, self.registry,
                                       self.strategy, metrics=self.metrics)
        self._reverse_engine = ReverseUndoEngine(program, self.applier,
                                                 self.history, self.cache)
        if extra_transformations:
            for t in extra_transformations:
                self.register(t)

    def register(self, transformation) -> None:
        """Add a transformation (e.g. spec-compiled) to this engine.

        Registered transformations are first-class: ``find``/``apply``
        offer them and both undo engines handle them through the same
        transformation-independent machinery.  A name collision raises
        :class:`RegistryError` (an :class:`ApplyError` subclass, so the
        misconfiguration is distinguishable from an apply that failed).
        """
        if transformation.name in self.registry:
            raise RegistryError(
                f"transformation {transformation.name!r} already registered")
        self.registry[transformation.name] = transformation

    # -- convenience accessors -----------------------------------------------

    @property
    def store(self) -> AnnotationStore:
        return self.applier.store

    @property
    def events(self) -> EventLog:
        return self.applier.events

    def source(self, show_labels: bool = False) -> str:
        """Current program text."""
        return format_program(self.program, show_labels=show_labels)

    def active_transformations(self) -> List[TransformationRecord]:
        """Currently applied transformations, in stamp order."""
        return self.history.active()

    # -- applying ---------------------------------------------------------------

    def find(self, name: str) -> List[Opportunity]:
        """Opportunities for transformation ``name`` in the current program."""
        return self.registry[name].find(self.program, self.cache)

    def find_all(self) -> Dict[str, List[Opportunity]]:
        """Opportunities for every registered transformation."""
        return {name: t.find(self.program, self.cache)
                for name, t in self.registry.items()}

    # -- the transactional command path ------------------------------------------

    def execute(self, command: Command):
        """Run one typed command through THE transactional path.

        The only place command execution is sequenced — for every
        command class and every entry point (engine API, edit sessions,
        server verbs, journal replay):

        1. **begin** — resolve arguments and allocate the order stamp;
           a failure here consumed nothing and propagates raw,
           unjournaled;
        2. **run** — perform the state change;
        3. on a failure the command class declares
           (``Command.failure_types``): roll back the record's partial
           primitive actions, deactivate it — the stamp stays consumed —
           and mark the command ``failed``;
        4. **notify** ``command_observers`` with the command, success
           and failure alike, so a journal replay reproduces stamps
           exactly (inside a batch, the notification is collected into
           the group instead).

        Returns whatever the command's run produced (a
        :class:`~repro.core.history.TransformationRecord` for applies,
        an undo report for undos, ...); the analysis-work delta of the
        execution lands on ``command.work``.
        """
        with self.tracer.span("command", op=command.op) as span:
            started = time.perf_counter()
            before = self.cache.counters.snapshot()
            rec = command._begin(self)
            try:
                result = command._run(self, rec)
            except command.failure_types as exc:
                if rec is not None:
                    # roll the partial run back so the program stays
                    # sound; the record consumed a stamp — deactivate,
                    # don't erase
                    for act in reversed(rec.actions):
                        self.applier.invert(act, rec.stamp)
                    self.history.deactivate(rec.stamp)
                command.failed = True
                command._note_failure(exc)
                command.work = WorkCounters.delta(
                    before, self.cache.counters.snapshot())
                span.tag(stamp=getattr(command, "stamp", None),
                         status="failed",
                         rolled_back=bool(rec is not None and rec.actions))
                self._notify(command)
                self._record_command(command,
                                     time.perf_counter() - started,
                                     "failed")
                surfaced = command._surface(exc)
                if surfaced is exc:
                    raise
                raise surfaced from exc
            command.work = WorkCounters.delta(
                before, self.cache.counters.snapshot())
            span.tag(stamp=getattr(command, "stamp", None), status="ok")
            self._notify(command)
            self._record_command(command, time.perf_counter() - started,
                                 "ok")
            return result

    def execute_batch(self, commands: Sequence[Command]) -> BatchResult:
        """Execute a group of commands as one journaled unit.

        Observers see a single :class:`~repro.core.commands.BatchCommand`
        carrying the executed prefix (one journal record, one fsync).  A
        failing sub-command stops the batch — it is journaled ``failed``
        at its position — and the batch returns rather than raises; see
        :attr:`~repro.core.commands.BatchResult.error`.
        """
        return self.execute(BatchCommand(commands=list(commands)))

    def _notify(self, command: Command) -> None:
        """Hand one executed command to the journal observers (or the
        enclosing batch's group, when one is collecting).

        Observer exceptions are **isolated and logged**, never
        propagated: by the time observers run, the command has already
        committed (or rolled back) and its order stamp is consumed, so
        letting a broken callback unwind the stack would leave callers
        believing a committed command failed — worse than the lost
        notification.  Every failure is logged to the ``repro.obs``
        logger, counted in ``repro_observer_errors_total``, and kept in
        :attr:`observer_errors`; remaining observers still run.  An
        observer that must stop the *session* on failure records the
        error itself and refuses subsequent commands (see
        ``DurableSession._on_command``'s poisoning protocol).
        """
        if self._batch_sinks:
            self._batch_sinks[-1].append(command)
            return
        for observer in list(self.command_observers):
            try:
                observer(command)
            except Exception as exc:
                self.observer_errors.append((repr(observer), exc))
                self.metrics.counter(
                    "repro_observer_errors_total",
                    "command_observers callbacks that raised "
                    "(isolated and logged)").inc()
                _log.warning("command observer %r raised for %s: %s",
                             observer, command.describe_op(), exc,
                             exc_info=True)

    def _record_command(self, command: Command, seconds: float,
                        status: str) -> None:
        """Count one executed command into the metrics registry.

        Batch sub-commands recurse through :meth:`execute`, so they are
        counted individually under their own op labels; the enclosing
        batch's analysis timers are skipped to avoid double-crediting
        the same analysis seconds.
        """
        m = self.metrics
        m.counter("repro_commands_total",
                  "commands executed through TransformationEngine.execute",
                  op=command.op, status=status).inc()
        ctx = current_request()
        m.histogram("repro_command_seconds",
                    "end-to-end latency of one executed command",
                    op=command.op).observe(
                        seconds,
                        exemplar=ctx["request"] if ctx else None)
        if command.op != "batch":
            for key, secs in (command.work.get("timers") or {}).items():
                m.histogram("repro_analysis_seconds",
                            "per-analysis wall-clock seconds "
                            "(WorkCounters timers)",
                            analysis=key).observe(secs)

    def _push_batch(self, sink: List[Command]) -> None:
        self._batch_sinks.append(sink)

    def _pop_batch(self) -> None:
        self._batch_sinks.pop()

    # -- thin command constructors ------------------------------------------------

    def apply(self, opportunity: Opportunity) -> TransformationRecord:
        """Apply a previously found opportunity, recording history."""
        return self.execute(ApplyCommand.from_opportunity(opportunity))

    def apply_first(self, name: str, **match) -> TransformationRecord:
        """Find-and-apply the first opportunity whose params match ``match``."""
        for opp in self.find(name):
            if all(opp.params.get(k) == v for k, v in match.items()):
                return self.apply(opp)
        raise ApplyError(f"no {name} opportunity matching {match!r}")

    def undo(self, stamp: int) -> UndoReport:
        """Independent-order undo (Figure 4)."""
        return self.execute(UndoCommand(stamp=stamp))

    def undo_reverse_to(self, stamp: int) -> ReverseUndoReport:
        """Reverse-order (LIFO) undo baseline of [5]."""
        return self.execute(UndoLifoCommand(stamp=stamp))

    # -- safety inspection -----------------------------------------------------------

    def check_context(self) -> CheckContext:
        """The context safety re-checks run against."""
        return CheckContext(program=self.program, cache=self.cache,
                            store=self.store, history=self.history)

    def check_safety(self, stamp: int) -> SafetyResult:
        """Re-validate one applied transformation's safety right now."""
        rec = self.history.by_stamp(stamp)
        return self.registry[rec.name].check_safety(self.check_context(), rec)

    def unsafe_transformations(self) -> List[int]:
        """Stamps of active transformations whose safety no longer holds."""
        out = []
        for rec in self.history.active():
            if not self.check_safety(rec.stamp).safe:
                out.append(rec.stamp)
        return out

    def check_reversibility(self, stamp: int):
        """Post-pattern validation of one applied transformation."""
        rec = self.history.by_stamp(stamp)
        return self.registry[rec.name].check_reversibility(
            self.program, self.store, rec)

    def explain(self, stamp: int) -> Optional[Dict]:
        """Structured *current* verdicts about one recorded stamp.

        Returns ``None`` for an unknown stamp.  For a live non-edit
        record the document carries both check verdicts (doc form, see
        :mod:`repro.obs.provenance`) naming the Table 3 condition, the
        causing record, and the clobbered pattern element; inactive
        records report only their state (their patterns are gone).  The
        session layer joins this with the audit trail for the full
        explanation.
        """
        from repro.obs.provenance import reversibility_verdict, safety_verdict

        if not self.history.has_stamp(stamp):
            return None
        rec = self.history.by_stamp(stamp)
        doc: Dict = {"stamp": stamp, "name": rec.name,
                     "active": rec.active, "is_edit": rec.is_edit}
        if rec.active and not rec.is_edit:
            doc["safety"] = safety_verdict(
                rec, self.check_safety(stamp)).to_doc()
            doc["reversibility"] = reversibility_verdict(
                rec, self.check_reversibility(stamp)).to_doc()
        return doc
