"""Reverse-order (LIFO) undo — the prior art baseline of [5].

"For undo in order, the first time the undo command is issued, the last
transformation is undone.  Consecutive repetitions of the undo command
continue to reverse earlier transformations.  Each transformation is
undone by applying its inverse actions."  (§2)

Because transformations are peeled strictly last-first, every post
pattern is intact when its turn comes — no reversibility analysis is
needed.  The price is collateral damage: removing ``t_i`` requires
first removing all of ``t_{i+1} … t_n``, wanted or not.  ``undo_to``
reports that collateral set so the E3 benchmark can compare it against
the independent-order engine's dependence cone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.incremental import AnalysisCache
from repro.core.actions import ActionApplier, ActionError
from repro.core.history import History
from repro.core.undo import UndoError
from repro.obs.provenance import ProvenanceNode
from repro.lang.ast_nodes import Program


@dataclass
class ReverseUndoReport:
    """Outcome of a LIFO undo-to-target."""

    target: int
    #: every stamp undone, most recent first (the target is last).
    undone: List[int] = field(default_factory=list)
    #: stamps that were undone only because they were in the way.
    collateral: List[int] = field(default_factory=list)
    actions_inverted: int = 0
    #: flat causal chain: the target at the root, each peeled record a
    #: child in peel order (LIFO needs no checks, so no check nodes).
    provenance: Optional[ProvenanceNode] = None


class ReverseUndoEngine:
    """Strict LIFO undo over the same history/applier as the main engine."""

    def __init__(self, program: Program, applier: ActionApplier,
                 history: History, cache: AnalysisCache,
                 incremental: bool = True):
        self.program = program
        self.applier = applier
        self.history = history
        self.cache = cache
        #: patch materialized analyses from the inverse-action events
        #: instead of dropping the whole cache after every step.
        self.incremental = incremental

    def undo_last(self) -> int:
        """Undo the most recently applied active transformation."""
        active = self.history.active()
        if not active:
            raise UndoError("no active transformation to undo")
        rec = active[-1]
        cursor = self.applier.events.cursor()
        for act in reversed(rec.actions):
            try:
                self.applier.invert(act, rec.stamp)
            except ActionError as exc:  # cannot happen under strict LIFO
                raise UndoError(
                    f"LIFO inverse of t{rec.stamp} failed: {exc}") from exc
        self.history.deactivate(rec.stamp)
        if self.incremental:
            self.cache.update_after_events(self.applier.events.since(cursor))
        else:
            self.cache.invalidate()
        return rec.stamp

    def undo_to(self, stamp: int) -> ReverseUndoReport:
        """Peel transformations last-first until ``stamp`` is undone.

        Like :meth:`repro.core.undo.UndoEngine.undo`, a raised
        :class:`UndoError` carries ``target``/``undone`` so the command
        pipeline can journal the partial progress of a failed peel.
        """
        rec = self.history.by_stamp(stamp)
        report = ReverseUndoReport(target=stamp)
        root = ProvenanceNode(kind="undo", stamp=stamp, name=rec.name,
                              role="target")
        report.provenance = root
        try:
            if not rec.active:
                raise UndoError(f"t{stamp} is not active")
            while rec.active:
                undone = self.undo_last()
                report.undone.append(undone)
                report.actions_inverted += len(
                    self.history.by_stamp(undone).actions)
                if undone != stamp:
                    report.collateral.append(undone)
                    root.add(ProvenanceNode(
                        kind="undo", stamp=undone,
                        name=self.history.by_stamp(undone).name,
                        role="collateral",
                        detail=f"applied after t{stamp}; LIFO order peels "
                               "it first"))
        except UndoError as exc:
            exc.target = stamp
            exc.undone = list(report.undone)
            exc.provenance = root.to_doc()
            raise
        return report
