"""The independent-order UNDO algorithm (the paper's Figure 4).

::

    Procedure UNDO(t_i)
      while post_pattern(t_i) is invalidated:            # lines 4-11
        determine a disabling condition of reversibility
        determine the primitive action causing it
        determine the transformation t_j that caused the action
        UNDO(t_j)                                        # affecting
      perform inverse actions of t_i                     # line 12
      dependence_and_data_flow_update                    # line 13
      determine affected region                          # line 15
      for t_k in affected region, k > i:                 # lines 16-29
        if reverse-destroy[t_i, t_k] marked 'x':         # heuristic
          if not safety(t_k): UNDO(t_k)                  # affected

The engine exposes three strategy knobs so the deferred experimental
studies can quantify each ingredient:

``use_heuristic``
    Apply the Table 4 reverse-destroy filter before safety re-checks
    (off = re-check every subsequent transformation, the exhaustive
    baseline of §4.4's first paragraph).
``use_regional``
    Restrict candidates to the affected region (off = order coordinate
    only).
``use_incremental``
    Update the dependence information from change events instead of
    re-running the whole analysis.  ``incremental_strategy`` selects the
    updater: ``"regional"`` (default) patches every materialized analysis
    from the events through the regional engine
    (:meth:`AnalysisCache.update_after_events`), while ``"full"`` reruns
    the from-scratch analysis — the baseline the benchmarks compare
    against (see docs/PERFORMANCE.md).

All three default to on — the paper's configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.analysis.incremental import AnalysisCache
from repro.core.actions import ActionApplier, ActionError
from repro.obs import metrics as obs_metrics
from repro.obs.provenance import (
    ProvenanceNode,
    reversibility_verdict,
    safety_verdict,
)
from repro.core.annotations import AnnotationStore
from repro.core.history import History, TransformationRecord
from repro.core.regions import (
    affected_names,
    affected_regions,
    record_in_region,
    record_names,
)
from repro.lang.ast_nodes import Program


class UndoError(RuntimeError):
    """Raised when a transformation cannot be undone.

    This happens when a reversibility-disabling condition was caused by
    something outside the recorded history (e.g. a user edit destroyed
    the post pattern): the algorithm has no affecting transformation to
    remove first.

    Instances raised by the top-level undo entry points surface their
    partial progress: ``target`` is the stamp the caller asked to undo
    and ``undone`` lists the stamps the cascade committed before the
    failure (a failed undo can still have mutated state — the journal
    records exactly that, so replay re-fails it identically).  Both are
    ``None`` when the error came from a context with no report.
    """

    #: the stamp the failed undo targeted (``None`` = unrecorded).
    target: Optional[int] = None
    #: stamps the cascade committed before failing (``None`` = unrecorded).
    undone: Optional[List[int]] = None
    #: partial provenance tree (doc form) of the failed cascade
    #: (``None`` = unrecorded); journaled into the audit log so a failed
    #: undo still explains how far it got and what stopped it.
    provenance: Optional[Dict] = None


@dataclass
class UndoReport:
    """What one UNDO invocation did, with work counters."""

    #: the stamp the user asked to undo.
    target: int
    #: every stamp undone, in the order the inverse actions ran
    #: (affecting transformations first, then the target, then affected).
    undone: List[int] = field(default_factory=list)
    #: stamps undone because they blocked the target's reversibility.
    affecting: List[int] = field(default_factory=list)
    #: stamps undone because the removal broke their safety.
    affected: List[int] = field(default_factory=list)
    # --- work counters (the "redundant analysis" the paper wants cut) ---
    reversibility_checks: int = 0
    safety_checks: int = 0
    #: candidates skipped by the Table 4 reverse-destroy heuristic.
    heuristic_skips: int = 0
    #: candidates skipped because they were outside the affected region.
    region_skips: int = 0
    #: primitive inverse actions performed.
    actions_inverted: int = 0
    #: causal tree of the cascade: every re-check, Table 4 / region
    #: skip, and forced undo, linked to the verdict that forced it.
    provenance: Optional[ProvenanceNode] = None

    def work(self) -> int:
        """Total checks performed (the comparison metric for E1/E2)."""
        return self.reversibility_checks + self.safety_checks


@dataclass
class UndoStrategy:
    """Strategy knobs (paper configuration = all on)."""

    use_heuristic: bool = True
    use_regional: bool = True
    use_incremental: bool = True
    #: ``"regional"`` (event-driven patching) or ``"full"`` (from-scratch
    #: baseline); only consulted when ``use_incremental`` is on.
    incremental_strategy: str = "regional"


class UndoEngine:
    """Implements Figure 4 against a program + history + analyses."""

    def __init__(self, program: Program, applier: ActionApplier,
                 history: History, cache: AnalysisCache,
                 registry: Optional[Dict] = None,
                 strategy: Optional[UndoStrategy] = None,
                 metrics: Optional[obs_metrics.MetricsRegistry] = None):
        from repro.transforms.registry import REGISTRY

        self.program = program
        self.applier = applier
        self.history = history
        self.cache = cache
        self.registry = registry if registry is not None else REGISTRY
        self.strategy = strategy if strategy is not None else UndoStrategy()
        self.metrics = metrics if metrics is not None else obs_metrics.REGISTRY

    @property
    def store(self) -> AnnotationStore:
        return self.applier.store

    # -- public API -----------------------------------------------------------

    def undo(self, stamp: int) -> UndoReport:
        """Undo transformation ``stamp`` in independent order.

        On failure the raised :class:`UndoError` carries the partial
        progress (``target``/``undone``) the cascade committed before
        the failing step, so callers — the command pipeline in
        particular — can journal exactly what happened.
        """
        rec = self.history.by_stamp(stamp)
        report = UndoReport(target=stamp)
        root = ProvenanceNode(kind="undo", stamp=stamp, name=rec.name,
                              role="target")
        report.provenance = root
        try:
            if not rec.active:
                raise UndoError(f"t{stamp} ({rec.name}) is not active")
            if rec.is_edit:
                raise UndoError(
                    "user edits are not undoable through the engine")
            self._undo(rec, report, set(), root)
        except UndoError as exc:
            exc.target = stamp
            exc.undone = list(report.undone)
            # attach the partial tree: a failed undo still explains how
            # far the cascade got and which verdict stopped it.
            exc.provenance = root.to_doc()
            raise
        return report

    # -- Figure 4 --------------------------------------------------------------

    def _undo(self, rec: TransformationRecord, report: UndoReport,
              in_progress: Set[int], node: ProvenanceNode) -> None:
        if not rec.active:
            return
        if rec.stamp in in_progress:
            raise UndoError(
                f"cyclic affecting-transformation chain at t{rec.stamp}")
        in_progress.add(rec.stamp)
        transform = self.registry[rec.name]

        # lines 4-11: undo affecting transformations until reversible
        guard = 0
        while True:
            guard += 1
            if guard > 10_000:
                raise UndoError(
                    f"reversibility of t{rec.stamp} did not converge")
            report.reversibility_checks += 1
            rr = transform.check_reversibility(self.program, self.store, rec)
            verdict = reversibility_verdict(rec, rr,
                                            triggered_by=report.target)
            self.metrics.counter(
                "repro_recheck_total",
                "safety/reversibility re-checks during undo cascades",
                check="reversibility",
                outcome="ok" if rr.reversible else "violation").inc()
            if rr.reversible:
                node.add(ProvenanceNode(kind="check", stamp=rec.stamp,
                                        name=rec.name, verdict=verdict))
                break
            node.add(ProvenanceNode(kind="check", stamp=rec.stamp,
                                    name=rec.name, verdict=verdict))
            violation = rr.violations[0]
            if violation.action_id is None:
                raise UndoError(
                    f"t{rec.stamp} ({rec.name}) is irreversible: "
                    f"{violation.condition} (no recorded action caused it)")
            t_j = self.history.stamp_of_action(violation.action_id)
            if t_j is None:
                raise UndoError(
                    f"action {violation.action_id} blocking t{rec.stamp} "
                    "belongs to no recorded transformation")
            blocker = self.history.by_stamp(t_j)
            if blocker.is_edit:
                raise UndoError(
                    f"t{rec.stamp} ({rec.name}) was invalidated by a user "
                    f"edit (t{t_j}): {violation.condition}")
            if t_j == rec.stamp or not blocker.active:
                raise UndoError(
                    f"t{rec.stamp} blocked by its own/inactive action "
                    f"(t{t_j}): {violation.condition}")
            report.affecting.append(t_j)
            child = node.add(ProvenanceNode(
                kind="undo", stamp=t_j, name=blocker.name, role="affecting",
                verdict=verdict,
                detail=f"its action {violation.action_id} blocks "
                       f"t{rec.stamp}: {violation.condition}"))
            self._undo(blocker, report, in_progress, child)

        # Generalized affecting condition: this record's inverse actions
        # will *remove* the statements its Add/Copy actions created.  Any
        # later active record whose actions reference those statements —
        # as a target, a copy source, or a location container — depends
        # on structure that is about to vanish and must be peeled first.
        # (Example: a fusion whose deleted-loop restore point lies inside
        # a strip-mining outer loop; undoing the strip mining deletes the
        # container the fusion needs.)
        from repro.core.actions import ActionKind

        guard = 0
        while True:
            guard += 1
            if guard > 10_000:
                raise UndoError(
                    f"structural dependents of t{rec.stamp} did not converge")
            doomed = {act.sid for act in rec.actions
                      if act.kind in (ActionKind.ADD, ActionKind.COPY)}
            blocker_rec = None
            if doomed:
                for r in self.history.active_after(rec.stamp):
                    if not r.active or r.stamp in in_progress:
                        continue
                    if _references(r, doomed):
                        blocker_rec = r
                        break
            if blocker_rec is None:
                break
            report.affecting.append(blocker_rec.stamp)
            child = node.add(ProvenanceNode(
                kind="undo", stamp=blocker_rec.stamp, name=blocker_rec.name,
                role="affecting", reason="structural-dependent",
                detail=f"references statements t{rec.stamp}'s inverse "
                       "actions will remove"))
            self._undo(blocker_rec, report, in_progress, child)

        # line 12: perform inverse actions (reverse application order)
        cursor = self.applier.events.cursor()
        for act in reversed(rec.actions):
            try:
                self.applier.invert(act, rec.stamp)
            except ActionError as exc:
                raise UndoError(
                    f"inverse action of t{rec.stamp} failed: {exc}") from exc
            report.actions_inverted += 1
        self.history.deactivate(rec.stamp)
        report.undone.append(rec.stamp)

        # line 13: dependence and data flow update — patch every
        # materialized analysis from the change events
        events = self.applier.events.since(cursor)
        if self.strategy.use_incremental:
            self.cache.update_after_events(
                events, strategy=self.strategy.incremental_strategy)
        else:
            self.cache.invalidate()

        # line 15: determine affected region (code + data-flow coordinates)
        region: Optional[Set[int]] = None
        names: Optional[Set[str]] = None
        if self.strategy.use_regional:
            region = affected_regions(self.program, self.cache, events)
            # the undone record's own names cover expressions its inverse
            # actions removed from the program
            names = affected_names(self.program, events) | \
                record_names(self.program, rec)

        # lines 16-29: undo affected transformations
        for t_k in self.history.active_after(rec.stamp):
            if t_k.stamp in in_progress:
                continue
            # line 20: reverse-destroy heuristic (via this engine's own
            # registry, so spec-registered transformations participate).
            # Extension transformations (names outside Table 4) are never
            # skipped: the published rows cannot know what enables them,
            # so the heuristic would be unsound for them.
            from repro.transforms.registry import TABLE4_ORDER

            if self.strategy.use_heuristic and \
                    t_k.name in TABLE4_ORDER and \
                    t_k.name not in self.registry[rec.name].enables:
                report.heuristic_skips += 1
                self.metrics.counter(
                    "repro_recheck_skips_total",
                    "candidates pruned before a safety re-check",
                    reason="table4-heuristic").inc()
                node.add(ProvenanceNode(
                    kind="skip", stamp=t_k.stamp, name=t_k.name,
                    reason="table4-heuristic",
                    detail=f"Table 4: undoing {rec.name} cannot destroy "
                           f"{t_k.name}'s safety ({rec.name} never "
                           f"enables it)"))
                continue
            # line 15/16: space coordinate
            if region is not None and not record_in_region(
                    self.program, self.cache, t_k, region, names):
                report.region_skips += 1
                self.metrics.counter(
                    "repro_recheck_skips_total",
                    "candidates pruned before a safety re-check",
                    reason="outside-region").inc()
                node.add(ProvenanceNode(
                    kind="skip", stamp=t_k.stamp, name=t_k.name,
                    reason="outside-region",
                    detail="outside the inverse actions' affected region"))
                continue
            # line 22: safety conditions given the inverse-action events
            from repro.transforms.base import CheckContext

            report.safety_checks += 1
            ctx = CheckContext(program=self.program, cache=self.cache,
                               store=self.store, history=self.history)
            sr = self.registry[t_k.name].check_safety(ctx, t_k)
            verdict = safety_verdict(t_k, sr, triggered_by=rec.stamp)
            self.metrics.counter(
                "repro_recheck_total",
                "safety/reversibility re-checks during undo cascades",
                check="safety",
                outcome="ok" if sr.safe else "violation").inc()
            node.add(ProvenanceNode(kind="check", stamp=t_k.stamp,
                                    name=t_k.name, verdict=verdict))
            if not sr.safe:
                report.affected.append(t_k.stamp)
                reason = sr.reasons[0] if sr.reasons else "unsafe"
                child = node.add(ProvenanceNode(
                    kind="undo", stamp=t_k.stamp, name=t_k.name,
                    role="affected", verdict=verdict,
                    detail=f"undoing t{rec.stamp} broke its safety: "
                           f"{reason}"))
                self._undo(t_k, report, in_progress, child)

        in_progress.discard(rec.stamp)


def _references(record: TransformationRecord, sids: Set[int]) -> bool:
    """Does any of the record's actions reference one of ``sids``?"""
    for act in record.actions:
        if act.sid in sids or act.src_sid in sids:
            return True
        for loc in (act.from_loc, act.to_loc):
            if loc is not None and loc.container[0] in sids:
                return True
    return False
