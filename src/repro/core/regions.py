"""Affected-region computation (§4.4's event-driven regional undo).

"An affected region is defined as the region of a program with code
changes (e.g., code reordering or modification) or data flow or data/
control dependence changes."  We compute it from the change events the
inverse actions emitted:

1. the **dirty regions** directly containing the touched containers /
   statements (the space coordinate of the change itself), then
2. the regions holding statements connected to the dirty code by a data
   dependence (flow effects propagate along dependences — found via the
   region-node summaries, Figure 3).

A transformation record is *inside* the affected region when any region
of its footprint (the statements its actions touched, plus the
containers of its recorded locations) intersects the affected set; only
those need a safety re-check after an undo.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set

from repro.analysis.control_dep import ControlDepTree, region_of_container
from repro.analysis.incremental import AnalysisCache
from repro.core.events import Event
from repro.core.history import TransformationRecord
from repro.core.locations import Location
from repro.lang.ast_nodes import Program, expr_arrays, expr_vars, stmt_defuse


def dirty_statements(program: Program, events: Sequence[Event]) -> Set[int]:
    """Attached statements directly touched by the events."""
    out: Set[int] = set()
    for ev in events:
        if program.has_node(ev.sid) and program.is_attached(ev.sid):
            out.add(ev.sid)
        for ref in ev.containers:
            sid, _slot = ref
            if sid == 0:
                out.update(s.sid for s in program.body)
            elif program.has_node(sid) and program.is_attached(sid):
                out.add(sid)
                if program.container_alive(ref):
                    out.update(m.sid for m in program.container_list(ref))
    return out


def affected_regions(program: Program, cache: AnalysisCache,
                     events: Sequence[Event]) -> Set[int]:
    """Region ids with *code* changes (§4.4's space coordinate).

    Only the regions whose statement lists or member statements the
    events touched are included.  Data-flow effects radiating out of
    these regions are covered by the companion *name* coordinate
    (:func:`affected_names`), which is finer than pulling whole regions
    in along dependence edges — and, unlike dependence edges, also
    couples through detached (deleted) statements.
    """
    tree = cache.control_tree()
    dirty = dirty_statements(program, events)
    rids: Set[int] = set()
    for ev in events:
        for ref in ev.containers:
            sid, _slot = ref
            if sid == 0 or (program.has_node(sid) and program.is_attached(sid)):
                rids.add(region_of_container(tree, program, ref))
    for sid in dirty:
        rid = tree.region_of.get(sid)
        if rid is not None:
            rids.add(rid)
    return rids


def record_footprint(program: Program,
                     record: TransformationRecord) -> Set[int]:
    """Sids a transformation record's actions touched (attached only),
    plus the container owners of its recorded locations."""
    out: Set[int] = set()
    for act in record.actions:
        if program.has_node(act.sid) and program.is_attached(act.sid):
            out.add(act.sid)
        if act.src_sid is not None and program.is_attached(act.src_sid):
            out.add(act.src_sid)
        for loc in (act.from_loc, act.to_loc):
            if loc is None:
                continue
            csid, _slot = loc.container
            if csid == 0:
                continue
            if program.has_node(csid) and program.is_attached(csid):
                out.add(csid)
    return out


def record_regions(program: Program, tree: ControlDepTree,
                   record: TransformationRecord) -> Set[int]:
    """Region ids of a record's footprint."""
    rids: Set[int] = set()
    for sid in record_footprint(program, record):
        rid = tree.region_of.get(sid)
        if rid is not None:
            rids.add(rid)
        # the containers a record owns (loop bodies it moved code into)
        stmt = program.node(sid)
        for slot in stmt.body_slots():
            rids.add(region_of_container(tree, program, (sid, slot)))
    for act in record.actions:
        for loc in (act.from_loc, act.to_loc):
            if loc is None:
                continue
            csid, _slot = loc.container
            if csid == 0:
                rids.add(0)
            elif program.has_node(csid) and program.is_attached(csid):
                rids.add(region_of_container(tree, program, loc.container))
    return rids


def _stmt_names(program: Program, sid: int) -> Set[str]:
    """Scalar and (``@``-prefixed) array names a statement references.

    Works for detached (ghost) statements too — a deleted definition's
    variable still couples it to live code that mentions the name.
    """
    if not program.has_node(sid):
        return set()
    du = stmt_defuse(program.node(sid))
    return (set(du.defs) | set(du.uses)
            | {"@" + a for a in du.array_defs}
            | {"@" + a for a in du.array_uses})


def affected_names(program: Program, events: Sequence[Event]) -> Set[str]:
    """Names whose data flow the events may have changed (§4.4's
    "data flow ... changes" coordinate).

    Includes the names of every event statement — attached or not: a
    removed statement's names stop flowing, a restored statement's names
    start flowing — plus the (header) names of the touched containers'
    owner statements.  Untouched sibling statements contribute nothing:
    their code did not change.

    Callers should union in :func:`record_names` of the undone (or edit)
    record itself, which adds the names of any expression the change
    removed (e.g. the operand a ``Modify`` inverse took out).
    """
    out: Set[str] = set()
    for ev in events:
        out |= _stmt_names(program, ev.sid)
        for ref in ev.containers:
            sid, _slot = ref
            if sid == 0:
                continue
            out |= _stmt_names(program, sid)
    return out


def record_names(program: Program, record: TransformationRecord) -> Set[str]:
    """Names a transformation record's footprint references.

    Drawn from the statements its actions touched (ghosts included) and
    the expressions its ``Modify`` actions replaced/installed — the
    variables its safety conditions are about.
    """
    out: Set[str] = set()
    for act in record.actions:
        out |= _stmt_names(program, act.sid)
        if act.src_sid is not None:
            out |= _stmt_names(program, act.src_sid)
        for e in (act.old_expr, act.new_expr):
            if e is not None:
                out |= expr_vars(e)
                out |= {"@" + a for a in expr_arrays(e)}
        for h in (act.old_header, act.new_header):
            if h is not None:
                out.add(h.var)
                for e in (h.lower, h.upper, h.step):
                    out |= expr_vars(e)
    return out


def record_structural_regions(program: Program, tree: ControlDepTree,
                              record: TransformationRecord) -> Set[int]:
    """Regions the record structurally *owns*: the bodies of the loops /
    branches in its footprint.

    A code change inside an owned region can break the record's
    structural safety conditions (a statement entering an interchanged
    nest, a new dependence between fused halves, a definition landing in
    a hoisted statement's loop) regardless of variable names.  Changes to
    the record's own statements, and all data-flow interactions, carry
    the record's names and are caught by the name coordinate instead.
    """
    rids: Set[int] = set()
    for sid in record_footprint(program, record):
        stmt = program.node(sid)
        for slot in stmt.body_slots():
            rids.add(region_of_container(tree, program, (sid, slot)))
    return rids


def record_in_region(program: Program, cache: AnalysisCache,
                     record: TransformationRecord,
                     affected: Set[int],
                     names: Optional[Set[str]] = None) -> bool:
    """Is the record inside the affected region?

    True when a code change landed in a region the record structurally
    owns (the *code change* coordinate) **or** the record references a
    name whose data flow the change touched (the *data flow* coordinate).
    The name coupling is what catches interactions running through
    detached statements — a restored use of a variable whose definition
    was deleted by a later DCE has no dependence edge in the current
    graph, yet the DCE's safety hinges on it.  Changes to the record's
    own footprint statements always share the record's names, so they
    are covered by the name coordinate by construction.
    """
    tree = cache.control_tree()
    if record_structural_regions(program, tree, record) & affected:
        return True
    if names:
        if record_names(program, record) & names:
            return True
    return False
