"""First-class commands: one transactional execute path for every layer.

The paper's central claim (Table 1) is that undo becomes *transformation
independent* once every change is expressed through a uniform action
vocabulary.  This module lifts that independence one level up, to the
*command* vocabulary: apply, undo, reverse-undo, user edits, and batches
are typed :class:`Command` values with

* a **registry** keyed by each command's ``op`` tag
  (:func:`decode_command` dispatches journal dicts through it — no
  op-string switch anywhere else);
* a **canonical dict encoding** (:meth:`Command.encode` /
  :meth:`Command.from_doc`) that *is* the journal format — the v1
  journals written by the PR-2 session service decode unchanged;
* ONE transactional execution protocol,
  :meth:`repro.core.engine.TransformationEngine.execute`:
  begin (allocate the order stamp) → run → on failure roll back the
  partial primitive actions, deactivate the record, and mark the
  command ``failed`` → notify ``command_observers`` — so success *and*
  failure journaling live in exactly one code path, for every entry
  point (engine API, edit sessions, server verbs, journal replay);
* a **replay protocol** (:meth:`Command.replay`) deriving recovery from
  the same declaration: re-execute through the real engine and raise
  :class:`ReplayError` on any divergence (wrong stamp, different undo
  set, a journaled failure that succeeds).

:class:`BatchCommand` executes a group of commands as one journaled
unit: observers see a single notification (one journal record, one
fsync), which is what makes batched execution cheap — see
``benchmarks/bench_e6_recovery.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    ClassVar,
    Dict,
    List,
    Optional,
    Tuple,
    Type,
)

from repro.core.history import TransformationRecord
from repro.core.locations import Location
from repro.core.undo import UndoError
from repro.lang.ast_nodes import Expr, ExprPath, Stmt
from repro.transforms.base import ApplyContext, Opportunity


# ---------------------------------------------------------------------------
# Exception vocabulary (engine re-exports ApplyError for compatibility)
# ---------------------------------------------------------------------------


class CommandError(RuntimeError):
    """Base class for command construction/execution protocol errors."""


class ApplyError(CommandError):
    """Raised when a transformation cannot be applied."""


class RegistryError(ApplyError):
    """A registry collision or other registration misconfiguration.

    Subclasses :class:`ApplyError` so existing ``except ApplyError``
    callers keep working, while new callers can distinguish
    misconfiguration from an apply that genuinely failed.
    """


class ReplayError(CommandError):
    """A journaled command did not replay the way it originally ran."""


class CommandDecodeError(ReplayError):
    """A journal dict does not decode to any registered command."""


# ---------------------------------------------------------------------------
# The command registry
# ---------------------------------------------------------------------------

#: ``op`` tag -> command class; populated by :func:`register_command`.
COMMANDS: Dict[str, Type["Command"]] = {}


def register_command(cls: Type["Command"]) -> Type["Command"]:
    """Class decorator: file a command class under its ``op`` tag."""
    if not cls.op:
        raise RegistryError(f"{cls.__name__} declares no op tag")
    if cls.op in COMMANDS:
        raise RegistryError(f"command op {cls.op!r} already registered")
    COMMANDS[cls.op] = cls
    return cls


def decode_command(doc: Dict[str, Any]) -> "Command":
    """Rebuild a command from its canonical (journal) dict.

    Accepts both current encodings and the v1 journal dicts of the PR-2
    session service (which lacked the ``stamp`` field on edits and the
    ``undone`` field on failed undos — those decode as ``None`` and the
    corresponding replay checks are skipped).
    """
    if not isinstance(doc, dict):
        raise CommandDecodeError(
            f"expected a command dict, got {type(doc).__name__}")
    cls = COMMANDS.get(doc.get("op"))
    if cls is None:
        raise CommandDecodeError(f"unknown journaled op {doc.get('op')!r}")
    return cls.from_doc(doc)


def _serde():
    """The service-layer value codec, imported lazily.

    Commands are core-layer objects; only their *encoding* needs the
    JSON codec, so the core -> service dependency stays confined to the
    moment a command is journaled or decoded.
    """
    from repro.service import serde

    return serde


# ---------------------------------------------------------------------------
# The command protocol
# ---------------------------------------------------------------------------


class Command:
    """One logical session command (the unit of journaling and replay).

    Subclasses declare their ``op`` tag, their ``failure_types`` (the
    exceptions that mean *this command failed and must be journaled as
    such*, as opposed to protocol errors that never consumed a stamp),
    and the four hooks the transactional executor calls:

    ``_begin(engine)``
        Resolve arguments and allocate the order stamp (returns the new
        history record, or ``None`` for commands that do not create
        one).  Exceptions here propagate raw — nothing was consumed, so
        nothing is journaled.
    ``_run(engine, rec)``
        Perform the state change; return the caller-visible result.
    ``_note_failure(exc)``
        Record failure details (e.g. the partially-undone stamps an
        :class:`UndoError` carries) before the command is journaled.
    ``_surface(exc)``
        The exception to raise to the caller (default: the original).
    """

    op: ClassVar[str] = ""
    failure_types: ClassVar[Tuple[type, ...]] = (Exception,)
    #: analysis-work delta of the last execution; set by
    #: ``TransformationEngine.execute`` from two WorkCounters snapshots.
    work: Dict[str, Any] = {}
    #: causal provenance tree (doc form) of the last execution; set by
    #: the undo commands from the undo engines' reports.  Deliberately
    #: NOT part of :meth:`encode` — the journal format must not change —
    #: it rides into the *audit log* instead (see
    #: :func:`repro.obs.provenance.audit_entry`).
    provenance: Optional[Dict[str, Any]] = None

    # -- encoding ------------------------------------------------------------

    def encode(self) -> Dict[str, Any]:
        """The canonical JSON-safe dict (exactly the journal format)."""
        doc: Dict[str, Any] = {"op": self.op}
        doc.update(self._encode_fields())
        if self.failed:
            doc["failed"] = True
        return doc

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "Command":
        """Rebuild a command from :meth:`encode` output (or a v1 dict)."""
        cmd = cls(**cls._decode_fields(doc))
        cmd.failed = bool(doc.get("failed"))
        return cmd

    def _encode_fields(self) -> Dict[str, Any]:
        raise NotImplementedError

    @classmethod
    def _decode_fields(cls, doc: Dict[str, Any]) -> Dict[str, Any]:
        raise NotImplementedError

    # -- execution -----------------------------------------------------------

    def execute(self, engine):
        """Run through the engine's single transactional path."""
        return engine.execute(self)

    def _begin(self, engine) -> Optional[TransformationRecord]:
        return None

    def _run(self, engine, rec: Optional[TransformationRecord]):
        raise NotImplementedError

    def _note_failure(self, exc: BaseException) -> None:
        pass

    def _surface(self, exc: BaseException) -> BaseException:
        return exc

    # -- replay --------------------------------------------------------------

    def _fresh(self) -> "Command":
        """A pristine copy to re-execute (decoded anew, never-failed)."""
        doc = self.encode()
        doc.pop("failed", None)
        return decode_command(doc)

    def replay(self, engine) -> None:
        """Re-execute against ``engine``; raise on any divergence."""
        fresh = self._fresh()
        if self.failed:
            self._replay_expect_failure(engine, fresh)
        else:
            self._replay_expect_success(engine, fresh)

    def _replay_expect_failure(self, engine, fresh: "Command") -> None:
        try:
            engine.execute(fresh)
        except self.failure_types:
            self._check_replayed_failure(fresh)
            return
        raise ReplayError(
            f"{self.describe_op()} was journaled as failed but succeeded "
            "on replay — journal and state have diverged")

    def _replay_expect_success(self, engine, fresh: "Command") -> None:
        try:
            engine.execute(fresh)
        except self.failure_types as exc:
            raise ReplayError(
                f"{self.describe_op()} was journaled as a success but "
                f"failed on replay: {exc}") from exc
        self._check_replayed_success(fresh)

    def _check_replayed_failure(self, fresh: "Command") -> None:
        pass

    def _check_replayed_success(self, fresh: "Command") -> None:
        pass

    # -- display -------------------------------------------------------------

    def describe_op(self) -> str:
        """Short ``op``-level label for error messages."""
        return self.op

    def describe(self) -> str:
        """One-line outcome rendering for server/CLI responses."""
        return f"{self.describe_op()}{' FAILED' if self.failed else ''}"


# ---------------------------------------------------------------------------
# apply
# ---------------------------------------------------------------------------


@register_command
@dataclass
class ApplyCommand(Command):
    """Apply one transformation opportunity.

    Three construction modes, resolved in this order at ``_begin``:
    a live ``opportunity`` (the engine's own fast path), exact ``params``
    match against the current opportunities (journal replay), or the
    ``index``-th current opportunity of ``name`` (protocol verbs).
    """

    op: ClassVar[str] = "apply"
    failure_types: ClassVar[Tuple[type, ...]] = (Exception,)

    name: str = ""
    params: Optional[Dict[str, Any]] = None
    stamp: Optional[int] = None
    failed: bool = False
    #: pick the index-th opportunity when ``params`` is None.
    index: int = 0
    #: live opportunity (never serialized; skips the find() pass).
    opportunity: Optional[Opportunity] = field(
        default=None, repr=False, compare=False)

    @classmethod
    def from_opportunity(cls, opportunity: Opportunity) -> "ApplyCommand":
        return cls(name=opportunity.name, params=dict(opportunity.params),
                   opportunity=opportunity)

    # -- encoding ------------------------------------------------------------

    def _encode_fields(self) -> Dict[str, Any]:
        if self.params is None:
            raise CommandError(
                f"apply {self.name!r} is unresolved (execute it first)")
        return {"name": self.name,
                "params": _serde().value_to_doc(self.params),
                "stamp": self.stamp}

    @classmethod
    def _decode_fields(cls, doc: Dict[str, Any]) -> Dict[str, Any]:
        return {"name": doc["name"],
                "params": _serde().value_from_doc(doc["params"]),
                "stamp": doc.get("stamp")}

    # -- execution -----------------------------------------------------------

    def _resolve(self, engine) -> Opportunity:
        if self.opportunity is not None:
            return self.opportunity
        opps = engine.find(self.name)
        if self.params is None:
            if not 0 <= self.index < len(opps):
                raise ApplyError(
                    f"no {self.name} opportunity at index {self.index} "
                    f"(have {len(opps)})")
            return opps[self.index]
        for opp in opps:
            if opp.params == self.params:
                return opp
        raise ApplyError(
            f"no {self.name} opportunity matching {self.params!r}")

    def _begin(self, engine) -> TransformationRecord:
        self._opp = self._resolve(engine)
        # unknown transformation = protocol error (KeyError), raised
        # before the order stamp is consumed
        self._transform = engine.registry[self.name]
        self.params = dict(self._opp.params)
        rec = engine.history.new_record(self.name, **self._opp.params)
        self.stamp = rec.stamp
        return rec

    def _run(self, engine, rec: TransformationRecord) -> TransformationRecord:
        ctx = ApplyContext(engine.program, engine.applier, engine.cache, rec)
        self._transform.apply_actions(ctx, self._opp)
        return rec

    def _surface(self, exc: BaseException) -> BaseException:
        return ApplyError(f"applying {self.name} failed: {exc}")

    # -- replay --------------------------------------------------------------

    def replay(self, engine) -> None:
        if self.failed:
            # the opportunity may not be findable at all — frequently the
            # very reason the original apply failed — so rebuild it from
            # the journaled params and require the same failure
            fresh = ApplyCommand(
                name=self.name, params=dict(self.params),
                opportunity=Opportunity(self.name, dict(self.params),
                                        "journal replay"))
            self._replay_expect_failure(engine, fresh)
            return
        fresh = ApplyCommand(name=self.name, params=dict(self.params))
        try:
            engine.execute(fresh)
        except ApplyError as exc:
            if fresh.stamp is None:
                raise ReplayError(
                    f"no {self.name} opportunity matching {self.params!r} "
                    "during replay") from exc
            raise ReplayError(
                f"replayed {self.name} was journaled as a success but "
                f"failed: {exc}") from exc
        self._check_replayed_success(fresh)

    def _check_replayed_success(self, fresh: "Command") -> None:
        if self.stamp is not None and fresh.stamp != self.stamp:
            raise ReplayError(
                f"replayed {self.name} got stamp {fresh.stamp}, journal "
                f"recorded {self.stamp}")

    # -- display -------------------------------------------------------------

    def describe_op(self) -> str:
        return f"apply {self.name}"

    def describe(self) -> str:
        if self.failed:
            return f"apply {self.name} FAILED (t{self.stamp})"
        return f"applied t{self.stamp}: {self.name}"


# ---------------------------------------------------------------------------
# undo / undo_lifo
# ---------------------------------------------------------------------------


@register_command
@dataclass
class UndoCommand(Command):
    """Independent-order undo of one stamp (the paper's Figure 4)."""

    op: ClassVar[str] = "undo"
    failure_types: ClassVar[Tuple[type, ...]] = (UndoError,)

    stamp: int = 0
    #: stamps actually undone; on a failed command, the partial progress
    #: the cascade committed before the failure (``None`` = unrecorded,
    #: as in v1 journals — the replay comparison is then skipped).
    undone: Optional[List[int]] = None
    failed: bool = False

    def _engine_call(self, engine):
        return engine._undo_engine.undo(self.stamp)

    def _run(self, engine, rec):
        report = self._engine_call(engine)
        self.undone = list(report.undone)
        if report.provenance is not None:
            self.provenance = report.provenance.to_doc()
        return report

    def _note_failure(self, exc: BaseException) -> None:
        # a cascade can commit partial undos before failing; UndoError
        # surfaces them (core/undo.py) so the journal records them
        partial = getattr(exc, "undone", None)
        self.undone = list(partial) if partial is not None else None
        self.provenance = getattr(exc, "provenance", None)

    # -- encoding ------------------------------------------------------------

    def _encode_fields(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"stamp": self.stamp}
        if self.undone is not None:
            doc["undone"] = list(self.undone)
        return doc

    @classmethod
    def _decode_fields(cls, doc: Dict[str, Any]) -> Dict[str, Any]:
        return {"stamp": doc["stamp"], "undone": doc.get("undone")}

    # -- replay --------------------------------------------------------------

    def _check_replayed_success(self, fresh: "Command") -> None:
        self._check_undone(fresh)

    def _check_replayed_failure(self, fresh: "Command") -> None:
        self._check_undone(fresh)

    def _check_undone(self, fresh: "Command") -> None:
        if self.undone is not None and fresh.undone is not None and \
                list(fresh.undone) != list(self.undone):
            raise ReplayError(
                f"{self.describe_op()} undid {fresh.undone}, journal "
                f"recorded {self.undone}")

    # -- display -------------------------------------------------------------

    def describe_op(self) -> str:
        return f"{self.op} t{self.stamp}"

    def describe(self) -> str:
        if self.failed:
            partial = f" (rolled through {self.undone})" if self.undone \
                else ""
            return f"{self.describe_op()} FAILED{partial}"
        return f"undone: {self.undone}"


@register_command
@dataclass
class UndoLifoCommand(UndoCommand):
    """Reverse-order (LIFO) undo back to one stamp — the [5] baseline."""

    op: ClassVar[str] = "undo_lifo"

    def _engine_call(self, engine):
        return engine._reverse_engine.undo_to(self.stamp)

    def describe(self) -> str:
        if self.failed:
            return super().describe()
        return f"undone (last-first): {self.undone}"


# ---------------------------------------------------------------------------
# edit
# ---------------------------------------------------------------------------

#: edit kind -> the argument fields it requires.
EDIT_KINDS: Dict[str, Tuple[str, ...]] = {
    "add": ("stmt", "loc"),
    "delete": ("sid",),
    "move": ("sid", "loc"),
    "modify": ("sid", "path", "expr"),
}


@register_command
@dataclass
class EditCommand(Command):
    """One user edit (add/delete/move/modify), first-class in history.

    Edits consume an order stamp and leave annotations exactly like
    transformations; executing through the engine means they notify
    ``command_observers`` like every other command — an edit on a
    journaled engine can no longer silently bypass the journal.
    """

    op: ClassVar[str] = "edit"
    failure_types: ClassVar[Tuple[type, ...]] = (Exception,)

    kind: str = ""
    sid: Optional[int] = None
    stmt: Optional[Stmt] = None
    loc: Optional[Location] = None
    path: Optional[ExprPath] = None
    expr: Optional[Expr] = None
    stamp: Optional[int] = None
    failed: bool = False

    def __post_init__(self):
        required = EDIT_KINDS.get(self.kind)
        if required is None:
            raise CommandError(f"unknown edit kind {self.kind!r}")
        missing = [f for f in required if getattr(self, f) is None]
        if missing:
            raise CommandError(
                f"edit {self.kind} is missing {', '.join(missing)}")
        # capture the JSON form of the arguments *now*, before execution:
        # the applier assigns sids into an added statement in place, and
        # replay must decode the pre-assignment form to reproduce them
        self._args_doc = self._encode_args()

    def _encode_args(self) -> Dict[str, Any]:
        serde = _serde()
        doc: Dict[str, Any] = {"kind": self.kind}
        if self.sid is not None:
            doc["sid"] = self.sid
        if self.stmt is not None:
            doc["stmt"] = serde.stmt_to_doc(self.stmt)
        if self.loc is not None:
            doc["loc"] = serde.value_to_doc(self.loc)
        if self.path is not None:
            doc["path"] = serde.value_to_doc(self.path)
        if self.expr is not None:
            doc["expr"] = serde.value_to_doc(self.expr)
        return doc

    # -- encoding ------------------------------------------------------------

    def _encode_fields(self) -> Dict[str, Any]:
        doc = dict(self._args_doc)
        if self.stamp is not None:
            doc["stamp"] = self.stamp
        return doc

    @classmethod
    def _decode_fields(cls, doc: Dict[str, Any]) -> Dict[str, Any]:
        serde = _serde()
        kind = doc.get("kind")
        if kind not in EDIT_KINDS:
            raise CommandDecodeError(f"unknown edit kind {kind!r}")
        out: Dict[str, Any] = {"kind": kind, "sid": doc.get("sid"),
                               "stamp": doc.get("stamp")}
        if "stmt" in doc:
            out["stmt"] = serde.stmt_from_doc(doc["stmt"])
        if "loc" in doc:
            out["loc"] = serde.value_from_doc(doc["loc"])
        if "path" in doc:
            out["path"] = serde.value_from_doc(doc["path"])
        if "expr" in doc:
            out["expr"] = serde.value_from_doc(doc["expr"])
        return out

    # -- execution -----------------------------------------------------------

    def _begin(self, engine) -> TransformationRecord:
        params = {"kind": self.kind}
        if self.sid is not None:
            params["sid"] = self.sid
        rec = engine.history.new_record("edit", **params)
        self.stamp = rec.stamp
        return rec

    def _run(self, engine, rec: TransformationRecord):
        from repro.edit.edits import EditReport

        applier = engine.applier
        if self.kind == "add":
            act = applier.add(rec.stamp, self.stmt, self.loc)
        elif self.kind == "delete":
            act = applier.delete(rec.stamp, self.sid)
        elif self.kind == "move":
            act = applier.move(rec.stamp, self.sid, self.loc)
        else:  # modify (EDIT_KINDS-validated at construction)
            act = applier.modify(rec.stamp, self.sid, self.path, self.expr)
        rec.actions.append(act)
        return EditReport(record=rec)

    # -- replay --------------------------------------------------------------

    def _check_replayed_success(self, fresh: "Command") -> None:
        self._check_stamp(fresh)

    def _check_replayed_failure(self, fresh: "Command") -> None:
        # a failed edit still consumed an order stamp and left a
        # deactivated record; re-failing must reproduce both
        self._check_stamp(fresh)

    def _check_stamp(self, fresh: "Command") -> None:
        if self.stamp is not None and fresh.stamp != self.stamp:
            raise ReplayError(
                f"replayed edit {self.kind} got stamp {fresh.stamp}, "
                f"journal recorded {self.stamp}")

    # -- display -------------------------------------------------------------

    def describe_op(self) -> str:
        return f"edit {self.kind}"

    def describe(self) -> str:
        if self.failed:
            return f"edit {self.kind} FAILED (t{self.stamp})"
        return f"edit t{self.stamp}: {self.kind}"


# ---------------------------------------------------------------------------
# batch
# ---------------------------------------------------------------------------


@dataclass
class BatchResult:
    """What one batch execution did."""

    #: per-command results of the successfully executed prefix.
    results: List[Any] = field(default_factory=list)
    #: the commands that actually ran, in order (last may be failed).
    executed: List[Command] = field(default_factory=list)
    #: the exception that stopped the batch (``None`` = all ran).
    error: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@register_command
@dataclass
class BatchCommand(Command):
    """Execute a group of commands as ONE journaled unit.

    Sub-commands run in order through the same transactional path;
    their observer notifications are collected instead of dispatched,
    and the batch notifies once with the full group — one journal
    record, one (amortized) fsync.  A failing sub-command stops the
    batch: the journal records exactly the executed prefix, with the
    failing command marked ``failed`` at its position, so replay
    reproduces the identical state.  Earlier sub-commands are NOT
    rolled back (undo is available for that, by design of the paper).
    """

    op: ClassVar[str] = "batch"
    #: the batch itself never journals as a top-level failure — failure
    #: is recorded per sub-command, at its position in the group.
    failure_types: ClassVar[Tuple[type, ...]] = ()

    commands: List[Command] = field(default_factory=list)
    failed: bool = False

    def _run(self, engine, rec) -> BatchResult:
        executed: List[Command] = []
        results: List[Any] = []
        error: Optional[BaseException] = None
        engine._push_batch(executed)
        try:
            for sub in self.commands:
                try:
                    results.append(engine.execute(sub))
                except Exception as exc:
                    # a failed sub-command already journaled itself into
                    # the group (via the collected notification); stop
                    error = exc
                    break
        finally:
            engine._pop_batch()
        self.commands = executed
        self.failed = any(sub.failed for sub in executed)
        return BatchResult(results=results, executed=executed, error=error)

    # -- encoding ------------------------------------------------------------

    def _encode_fields(self) -> Dict[str, Any]:
        return {"commands": [sub.encode() for sub in self.commands]}

    @classmethod
    def _decode_fields(cls, doc: Dict[str, Any]) -> Dict[str, Any]:
        return {"commands": [decode_command(d) for d in doc["commands"]]}

    # -- replay --------------------------------------------------------------

    def replay(self, engine) -> None:
        """Replay the executed group, sub-command by sub-command."""
        for sub in self.commands:
            sub.replay(engine)

    # -- display -------------------------------------------------------------

    def describe_op(self) -> str:
        return f"batch[{len(self.commands)}]"

    def describe(self) -> str:
        n_failed = sum(1 for sub in self.commands if sub.failed)
        status = f", {n_failed} failed" if n_failed else ""
        return f"batch: {len(self.commands)} command(s){status}"


# ---------------------------------------------------------------------------
# Protocol-verb parsing (shared by the line server and the CLI)
# ---------------------------------------------------------------------------

#: verb -> builder; the single place protocol text becomes commands.
_VERBS: Dict[str, Callable[[List[str]], Command]] = {
    "apply": lambda args: ApplyCommand(
        name=args[0], index=int(args[1]) if len(args) > 1 else 0),
    "undo": lambda args: UndoCommand(stamp=int(args[0])),
    "undo-lifo": lambda args: UndoLifoCommand(stamp=int(args[0])),
    "edit-del": lambda args: EditCommand(kind="delete", sid=int(args[0])),
}


def parse_verb(verb: str, args: List[str]) -> Command:
    """Parse one protocol verb (``apply cse 0``, ``undo 3``, ...)."""
    builder = _VERBS.get(verb)
    if builder is None:
        raise ValueError(f"unknown command verb {verb!r}")
    return builder(args)


def parse_batch(args: List[str]) -> BatchCommand:
    """Parse ``;``-separated verb groups into one :class:`BatchCommand`."""
    groups: List[List[str]] = [[]]
    for token in args:
        if token == ";":
            groups.append([])
        else:
            groups[-1].append(token)
    commands = [parse_verb(group[0], group[1:]) for group in groups if group]
    if not commands:
        raise ValueError("empty batch")
    return BatchCommand(commands=commands)
