"""Transformation-history annotations (the paper's Figure 2).

Every primitive action leaves a small, *transformation-independent*
annotation on the program representation, keyed by the **order stamp**
``t`` of the transformation that caused it:

=========  =====================================================
``md_t``   an expression (or loop header) was modified
``mv_t``   a statement was moved
``del_t``  a statement was deleted (annotation sits on the ghost)
``add_t``  a statement was added
``cp_t``   a statement is a copy created by the transformation
``cps_t``  a statement was the *source* of a copy
=========  =====================================================

The annotations serve two purposes (§4.1):

1. validating a transformation's **post pattern** — a later-stamped
   annotation overlapping the pattern's footprint reveals an *affecting*
   transformation that must be undone first, and
2. mapping a violating primitive action back to the transformation that
   performed it (``stamp`` → history record), which drives lines 8–9 of
   the UNDO algorithm.

Annotations live in a side table keyed by sid rather than on the AST
nodes themselves, so detached (deleted) statements retain their history
and the AST stays clean.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.lang.ast_nodes import ExprPath, Program

#: Annotation kinds, matching Figure 2's abbreviations.
ANN_KINDS = ("md", "mv", "del", "add", "cp", "cps")


@dataclass(frozen=True)
class Annotation:
    """One history annotation on a statement (or expression path)."""

    kind: str
    #: order stamp of the transformation (or edit) that caused the action.
    stamp: int
    #: the action's global id, for exact attribution.
    action_id: int
    #: sid of the annotated statement.
    sid: int
    #: expression path for ``md`` annotations (``None`` otherwise, except
    #: the special ``("header",)`` path used for loop-header modifies).
    path: Optional[ExprPath] = None

    def short(self) -> str:
        """Compact rendering like ``md_3`` as drawn in Figure 2."""
        return f"{self.kind}_{self.stamp}"


_DIGEST_MOD = 1 << 256


def _ann_key(ann: Annotation) -> str:
    """Deterministic text encoding of one annotation (digest preimage)."""
    return f"{ann.kind}|{ann.stamp}|{ann.action_id}|{ann.sid}|{ann.path!r}"


def _ann_hash(ann: Annotation) -> int:
    return int.from_bytes(
        hashlib.sha256(_ann_key(ann).encode("utf-8")).digest(), "big")


class AnnotationStore:
    """Side table of annotations, indexed by sid and by stamp.

    The store maintains a *commutative* multiset digest — the sum of
    per-annotation hashes mod 2^256 — updated in :meth:`add` and
    :meth:`remove`, the two mutation chokepoints.  Removal order does not
    matter, which matches the store's semantics (annotations are a set
    keyed by content).  It also keeps an append-only ``oplog`` of
    ``("add"|"remove", annotation)`` entries so delta snapshots can ship
    only the tail since the last full snapshot.
    """

    def __init__(self) -> None:
        self._by_sid: Dict[int, List[Annotation]] = {}
        self._by_stamp: Dict[int, List[Annotation]] = {}
        self._digest_acc = 0
        self.oplog: List[Tuple[str, Annotation]] = []

    @property
    def digest(self) -> str:
        """Commutative content digest of the current annotation multiset."""
        return f"{self._digest_acc:064x}"

    # -- mutation ------------------------------------------------------------

    def add(self, ann: Annotation) -> Annotation:
        """Insert an annotation into both indices; returns it."""
        self._by_sid.setdefault(ann.sid, []).append(ann)
        self._by_stamp.setdefault(ann.stamp, []).append(ann)
        self._digest_acc = (self._digest_acc + _ann_hash(ann)) % _DIGEST_MOD
        self.oplog.append(("add", ann))
        return ann

    def remove(self, ann: Annotation) -> None:
        """Remove one annotation from both indices."""
        self._by_sid[ann.sid].remove(ann)
        if not self._by_sid[ann.sid]:
            del self._by_sid[ann.sid]
        self._by_stamp[ann.stamp].remove(ann)
        if not self._by_stamp[ann.stamp]:
            del self._by_stamp[ann.stamp]
        self._digest_acc = (self._digest_acc - _ann_hash(ann)) % _DIGEST_MOD
        self.oplog.append(("remove", ann))

    def remove_action(self, sid: int, action_id: int) -> None:
        """Remove every annotation a given action left on ``sid``."""
        for ann in [a for a in self._by_sid.get(sid, []) if a.action_id == action_id]:
            self.remove(ann)

    def remove_stamp(self, stamp: int) -> None:
        """Remove every annotation belonging to transformation ``stamp``."""
        for ann in list(self._by_stamp.get(stamp, [])):
            self.remove(ann)

    # -- queries ----------------------------------------------------------------

    def for_sid(self, sid: int) -> Sequence[Annotation]:
        """All annotations currently on statement ``sid``."""
        return tuple(self._by_sid.get(sid, ()))

    def for_stamp(self, stamp: int) -> Sequence[Annotation]:
        """All annotations left by transformation ``stamp``."""
        return tuple(self._by_stamp.get(stamp, ()))

    def stamps(self) -> List[int]:
        """Stamps that still have annotations (i.e. active transformations)."""
        return sorted(self._by_stamp)

    def after(self, sid: int, stamp: int,
              kinds: Optional[Iterable[str]] = None) -> List[Annotation]:
        """Annotations on ``sid`` with a stamp strictly greater than ``stamp``.

        These witness *affecting* transformations: actions applied after
        transformation ``stamp`` that touched the same statement.
        """
        ks = set(kinds) if kinds is not None else None
        return [a for a in self._by_sid.get(sid, ())
                if a.stamp > stamp and (ks is None or a.kind in ks)]

    def subtree_after(self, program: Program, sid: int, stamp: int,
                      kinds: Optional[Iterable[str]] = None) -> List[Annotation]:
        """Like :meth:`after` but over ``sid`` and all its descendants."""
        out: List[Annotation] = []
        stack = [program.node(sid)]
        while stack:
            s = stack.pop()
            out.extend(self.after(s.sid, stamp, kinds))
            for slot in s.body_slots():
                stack.extend(s.get_body(slot))
        return out

    def path_modified_after(self, sid: int, path: ExprPath,
                            stamp: int) -> List[Annotation]:
        """``md`` annotations after ``stamp`` whose path overlaps ``path``.

        Two paths overlap when one is a prefix of the other: modifying a
        subtree clobbers both the subtree's and any enclosing pattern.
        """
        out = []
        for a in self._by_sid.get(sid, ()):
            if a.kind != "md" or a.stamp <= stamp or a.path is None:
                continue
            n = min(len(a.path), len(path))
            if a.path[:n] == path[:n]:
                out.append(a)
        return out

    def annotations_view(self, program: Program) -> Dict[int, List[str]]:
        """Map of sid → compact annotation strings for attached statements
        (used by the two-level representation renderers)."""
        out: Dict[int, List[str]] = {}
        for s in program.walk():
            anns = self.for_sid(s.sid)
            if anns:
                out[s.sid] = [a.short() for a in sorted(anns, key=lambda x: x.stamp)]
        return out

    def __iter__(self) -> Iterator[Annotation]:
        for anns in self._by_sid.values():
            yield from anns

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_sid.values())
