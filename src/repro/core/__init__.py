"""Core undo machinery: primitive actions, history, and the UNDO engines.

This package implements the paper's contribution proper:

* :mod:`repro.core.actions` — the five primitive actions of Table 1
  (``Delete``, ``Copy``, ``Move``, ``Add``, ``Modify``) together with their
  inverse actions, applied through an :class:`~repro.core.actions.ActionApplier`
  that records transformation-independent history.
* :mod:`repro.core.locations` — locations with anchor-based re-resolution,
  needed so ``Add(orig_location, -, a)`` can restore a deleted statement.
* :mod:`repro.core.annotations` — the ``md_t`` / ``mv_t`` / ``del_t`` /
  ``cp_t`` / ``add_t`` annotations of Figure 2, keyed by order stamps.
* :mod:`repro.core.history` — transformation records with pre/post
  patterns (Table 2) and order stamps.
* :mod:`repro.core.interactions` — the enabling-interaction
  (reverse-destroy) matrix of Table 4.
* :mod:`repro.core.regions` — affected-region computation for the
  event-driven regional undo of §4.4.
* :mod:`repro.core.undo` — the independent-order UNDO algorithm of
  Figure 4; :mod:`repro.core.reverse_undo` — the reverse-order baseline
  of [5].
* :mod:`repro.core.engine` — the user-facing façade tying it together.
"""

from repro.core.actions import ActionApplier, ActionKind, ActionRecord
from repro.core.annotations import Annotation, AnnotationStore
from repro.core.engine import TransformationEngine
from repro.core.events import Event, EventKind
from repro.core.history import History, TransformationRecord
from repro.core.locations import Location
from repro.core.undo import UndoError, UndoReport

__all__ = [
    "ActionApplier",
    "ActionKind",
    "ActionRecord",
    "Annotation",
    "AnnotationStore",
    "TransformationEngine",
    "Event",
    "EventKind",
    "History",
    "TransformationRecord",
    "Location",
    "UndoError",
    "UndoReport",
]
