"""The five primitive actions of Table 1 and their inverse actions.

==========================================  ===================================
Action                                      Inverse action
==========================================  ===================================
``Delete (a)``                              ``Add (orig_location, -, a)``
``Copy (a, location, c)``                   ``Delete (c)``
``Move (a, location)``                      ``Move (a, orig_location)``
``Add (location, description, a)``          ``Delete (a)``
``Modify (exp(a), new_exp)``                ``Modify (new_exp(a), exp)``
==========================================  ===================================

Every transformation in :mod:`repro.transforms` is *expressed as a
sequence of these actions*, applied through the :class:`ActionApplier`.
This is what makes the undo technique transformation independent: new
transformations can be added without touching the undo machinery, because
undoing is just running inverse actions (once the reversibility checks
pass).

Each applied action

* records an :class:`ActionRecord` carrying everything needed to invert it,
* leaves order-stamped annotations on the representation (Figure 2), and
* emits :class:`~repro.core.events.Event` objects for the event-driven
  regional undo.

``Modify`` comes in two flavours: expression modification (addressed by
an expression path within a statement) and *loop-header* modification,
used by loop interchange's ``Modify(L1, L2)`` which swaps the headers of
two loops while their bodies stay in place.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.annotations import Annotation, AnnotationStore
from repro.core.events import Event, EventKind, EventLog
from repro.core.locations import Location
from repro.lang.ast_nodes import (
    Expr,
    ExprPath,
    Loop,
    Program,
    Stmt,
    expr_at,
    exprs_equal,
    replace_expr,
)


class ActionError(RuntimeError):
    """Raised when an action or inverse action cannot be performed.

    The UNDO algorithm's post-pattern checks exist precisely to prevent
    these; reaching one during an undo indicates either a bug or a caller
    bypassing the reversibility protocol.
    """


class ActionKind(enum.Enum):
    """The primitive action vocabulary of Table 1."""

    DELETE = "delete"
    COPY = "copy"
    MOVE = "move"
    ADD = "add"
    MODIFY = "modify"


@dataclass(frozen=True)
class HeaderSpec:
    """A snapshot of a loop header ``(var, lower, upper, step)``."""

    var: str
    lower: Expr
    upper: Expr
    step: Expr

    @staticmethod
    def of(loop: Loop) -> "HeaderSpec":
        return HeaderSpec(loop.var, loop.lower.clone(), loop.upper.clone(),
                          loop.step.clone())

    def install(self, loop: Loop) -> None:
        """Write this header's fields onto ``loop`` (clones the exprs)."""
        loop.var = self.var
        loop.lower = self.lower.clone()
        loop.upper = self.upper.clone()
        loop.step = self.step.clone()
        loop._h = None  # the loop's cached content hash covers its header


#: Expression path marking a loop-header modification.
HEADER_PATH: ExprPath = ("header",)


@dataclass
class ActionRecord:
    """One applied primitive action, with everything needed to invert it."""

    action_id: int
    stamp: int
    kind: ActionKind
    #: primary statement: the deleted/added/moved/modified statement, or
    #: the *clone* for COPY.
    sid: int
    #: COPY only: the statement that was copied.
    src_sid: Optional[int] = None
    #: original location (DELETE origin, MOVE origin).
    from_loc: Optional[Location] = None
    #: destination (ADD, COPY, MOVE target).
    to_loc: Optional[Location] = None
    #: MODIFY: path of the replaced subtree (or ``HEADER_PATH``).
    path: Optional[ExprPath] = None
    #: MODIFY: replaced/replacement subtrees (clones, immutable).
    old_expr: Optional[Expr] = None
    new_expr: Optional[Expr] = None
    #: MODIFY(header): replaced/replacement headers.
    old_header: Optional[HeaderSpec] = None
    new_header: Optional[HeaderSpec] = None
    #: annotations this action placed (removed again when inverted).
    annotations: List[Annotation] = field(default_factory=list)

    def describe(self) -> str:
        """Compact rendering, e.g. ``del_2(S5)`` or ``md_4(S6.expr)``."""
        base = {
            ActionKind.DELETE: "del",
            ActionKind.COPY: "cp",
            ActionKind.MOVE: "mv",
            ActionKind.ADD: "add",
            ActionKind.MODIFY: "md",
        }[self.kind]
        tgt = f"S{self.sid}"
        if self.kind is ActionKind.MODIFY and self.path is not None:
            tgt += "." + ".".join(self.path)
        return f"{base}_{self.stamp}({tgt})"


class ActionApplier:
    """Applies primitive actions to a program, recording history.

    One applier is shared by all transformations operating on a program;
    it owns the global action-id counter, the annotation store, and the
    event log.
    """

    def __init__(self, program: Program,
                 store: Optional[AnnotationStore] = None,
                 events: Optional[EventLog] = None):
        self.program = program
        self.store = store if store is not None else AnnotationStore()
        self.events = events if events is not None else EventLog()
        self._next_action_id = 1
        #: instrumentation: actions applied / inverted.
        self.applied_count = 0
        self.inverted_count = 0
        #: optional cross-record sibling orderer (see
        #: :func:`repro.core.locations.make_sibling_orderer`), used when
        #: inverse actions restore statements into contested positions.
        self.orderer = None
        #: optional callback ``note(stamp)`` invoked whenever an action
        #: mutates the record with that stamp (forward apply appends an
        #: action; invert strips annotations).  The incremental
        #: fingerprint uses it to re-digest only dirty history records.
        self.note = None

    def _note(self, stamp: int) -> None:
        if self.note is not None:
            self.note(stamp)

    # -- instrumentation / persistence hooks ---------------------------------

    @property
    def next_action_id(self) -> int:
        """The id the next applied action will receive (persisted by the
        durable-session serializer so restored sessions never reuse ids)."""
        return self._next_action_id

    def restore_instrumentation(self, next_action_id: int,
                                applied: int, inverted: int) -> None:
        """Restore the id counter and apply/invert totals after a reopen."""
        self._next_action_id = next_action_id
        self.applied_count = applied
        self.inverted_count = inverted

    # -- internals -----------------------------------------------------------

    def _new_id(self) -> int:
        aid = self._next_action_id
        self._next_action_id += 1
        return aid

    def _annotate(self, rec: ActionRecord, kind: str, sid: int,
                  path: Optional[ExprPath] = None) -> None:
        ann = Annotation(kind=kind, stamp=rec.stamp, action_id=rec.action_id,
                         sid=sid, path=path)
        self.store.add(ann)
        rec.annotations.append(ann)

    def _emit(self, rec: ActionRecord, kind: EventKind, sid: int,
              containers: Tuple, inverse: bool = False) -> None:
        self.events.emit(Event(kind=kind, sid=sid, containers=tuple(containers),
                               stamp=rec.stamp, action_id=rec.action_id,
                               inverse=inverse))

    # -- forward actions ---------------------------------------------------------

    def delete(self, stamp: int, sid: int) -> ActionRecord:
        """``Delete (a)`` — detach statement ``sid``, remembering its origin."""
        if not self.program.is_attached(sid):
            raise ActionError(f"cannot delete detached statement {sid}")
        origin = Location.of_stmt(self.program, sid)
        self.program.detach(sid)
        rec = ActionRecord(self._new_id(), stamp, ActionKind.DELETE, sid,
                           from_loc=origin)
        self._annotate(rec, "del", sid)
        self._emit(rec, EventKind.STMT_REMOVED, sid, (origin.container,))
        self._note(stamp)
        self.applied_count += 1
        return rec

    def add(self, stamp: int, stmt: Stmt, loc: Location) -> ActionRecord:
        """``Add (location, description, a)`` — insert a (new) statement."""
        resolved = loc.resolve(self.program)
        if resolved is None:
            raise ActionError(f"add target {loc} is not resolvable")
        ref, idx = resolved
        self.program.register(stmt)
        self.program.insert(ref, idx, stmt)
        rec = ActionRecord(self._new_id(), stamp, ActionKind.ADD, stmt.sid,
                           to_loc=loc)
        self._annotate(rec, "add", stmt.sid)
        self._emit(rec, EventKind.STMT_INSERTED, stmt.sid, (ref,))
        self._note(stamp)
        self.applied_count += 1
        return rec

    def move(self, stamp: int, sid: int, loc: Location) -> ActionRecord:
        """``Move (a, location)`` — relocate an attached statement."""
        if not self.program.is_attached(sid):
            raise ActionError(f"cannot move detached statement {sid}")
        origin = Location.of_stmt(self.program, sid)
        resolved = loc.resolve(self.program)
        if resolved is None:
            raise ActionError(f"move target {loc} is not resolvable")
        ref, idx = resolved
        self.program.detach(sid)
        # detaching may shift the index within the same container
        resolved2 = loc.resolve(self.program)
        assert resolved2 is not None
        ref, idx = resolved2
        self.program.insert(ref, idx, self.program.node(sid))
        rec = ActionRecord(self._new_id(), stamp, ActionKind.MOVE, sid,
                           from_loc=origin, to_loc=loc)
        self._annotate(rec, "mv", sid)
        self._emit(rec, EventKind.STMT_MOVED, sid, (origin.container, ref))
        self._note(stamp)
        self.applied_count += 1
        return rec

    def copy(self, stamp: int, src_sid: int, loc: Location) -> ActionRecord:
        """``Copy (a, location, c)`` — clone ``a`` and insert the clone."""
        if not self.program.is_attached(src_sid):
            raise ActionError(f"cannot copy detached statement {src_sid}")
        resolved = loc.resolve(self.program)
        if resolved is None:
            raise ActionError(f"copy target {loc} is not resolvable")
        ref, idx = resolved
        clone = self.program.clone_subtree(self.program.node(src_sid))
        self.program.insert(ref, idx, clone)
        rec = ActionRecord(self._new_id(), stamp, ActionKind.COPY, clone.sid,
                           src_sid=src_sid, to_loc=loc)
        self._annotate(rec, "cp", clone.sid)
        self._annotate(rec, "cps", src_sid)
        self._emit(rec, EventKind.STMT_INSERTED, clone.sid, (ref,))
        self._note(stamp)
        self.applied_count += 1
        return rec

    def modify(self, stamp: int, sid: int, path: ExprPath,
               new_expr: Expr) -> ActionRecord:
        """``Modify (exp(a), new_exp)`` — replace an expression subtree."""
        stmt = self.program.node(sid)
        old = replace_expr(stmt, path, new_expr.clone())
        self.program.touch(sid)
        rec = ActionRecord(self._new_id(), stamp, ActionKind.MODIFY, sid,
                           path=path, old_expr=old.clone(),
                           new_expr=new_expr.clone())
        self._annotate(rec, "md", sid, path)
        containers = ()
        parent = self.program.parent_of(sid)
        if parent is not None:
            containers = (parent,)
        self._emit(rec, EventKind.EXPR_MODIFIED, sid, containers)
        self._note(stamp)
        self.applied_count += 1
        return rec

    def modify_header(self, stamp: int, loop_sid: int,
                      new_header: HeaderSpec) -> ActionRecord:
        """``Modify (L, H)`` — replace a loop's ``(var, bounds, step)``.

        Loop interchange is three of these plus a ``Copy`` (Table 2).
        """
        loop = self.program.node(loop_sid)
        if not isinstance(loop, Loop):
            raise ActionError(f"statement {loop_sid} is not a loop")
        old = HeaderSpec.of(loop)
        new_header.install(loop)
        self.program.touch(loop_sid)
        rec = ActionRecord(self._new_id(), stamp, ActionKind.MODIFY, loop_sid,
                           path=HEADER_PATH, old_header=old,
                           new_header=new_header)
        self._annotate(rec, "md", loop_sid, HEADER_PATH)
        containers = ()
        parent = self.program.parent_of(loop_sid)
        if parent is not None:
            containers = (parent, (loop_sid, "body"))
        self._emit(rec, EventKind.HEADER_MODIFIED, loop_sid, containers)
        self._note(stamp)
        self.applied_count += 1
        return rec

    # -- inverse actions --------------------------------------------------------------

    def invert(self, rec: ActionRecord, undo_stamp: int) -> None:
        """Perform the inverse of ``rec`` (Table 1, right column).

        Also removes the annotations the forward action placed — undoing a
        transformation erases it from the history, as §5.2 notes for the
        immediate reversals of CSE and CTP.
        """
        if rec.kind is ActionKind.DELETE:
            self._invert_delete(rec, undo_stamp)
        elif rec.kind is ActionKind.ADD:
            self._invert_add(rec, undo_stamp)
        elif rec.kind is ActionKind.MOVE:
            self._invert_move(rec, undo_stamp)
        elif rec.kind is ActionKind.COPY:
            self._invert_copy(rec, undo_stamp)
        elif rec.kind is ActionKind.MODIFY:
            self._invert_modify(rec, undo_stamp)
        else:  # pragma: no cover - enum is closed
            raise ActionError(f"unknown action kind {rec.kind}")
        for ann in rec.annotations:
            try:
                self.store.remove(ann)
            except (KeyError, ValueError):  # already gone: tolerated
                pass
        rec.annotations.clear()
        self._note(rec.stamp)
        self.inverted_count += 1

    def _invert_delete(self, rec: ActionRecord, undo_stamp: int) -> None:
        # inverse: Add(orig_location, -, a)
        assert rec.from_loc is not None
        resolved = rec.from_loc.resolve(self.program, orderer=self.orderer,
                                        self_sid=rec.sid)
        if resolved is None:
            raise ActionError(
                f"original location of deleted statement {rec.sid} is gone; "
                "affecting transformations were not undone first")
        ref, idx = resolved
        if self.program.is_attached(rec.sid):
            raise ActionError(f"statement {rec.sid} is unexpectedly attached")
        self.program.insert(ref, idx, self.program.node(rec.sid))
        self._emit(rec, EventKind.STMT_INSERTED, rec.sid, (ref,), inverse=True)

    def _invert_add(self, rec: ActionRecord, undo_stamp: int) -> None:
        # inverse: Delete(a)
        if not self.program.is_attached(rec.sid):
            raise ActionError(f"added statement {rec.sid} already detached")
        origin = Location.of_stmt(self.program, rec.sid)
        self.program.detach(rec.sid)
        self._emit(rec, EventKind.STMT_REMOVED, rec.sid, (origin.container,),
                   inverse=True)

    def _invert_move(self, rec: ActionRecord, undo_stamp: int) -> None:
        # inverse: Move(a, orig_location)
        assert rec.from_loc is not None
        if not self.program.is_attached(rec.sid):
            raise ActionError(f"moved statement {rec.sid} is detached")
        here = Location.of_stmt(self.program, rec.sid)
        resolved = rec.from_loc.resolve(self.program, orderer=self.orderer,
                                        self_sid=rec.sid)
        if resolved is None:
            raise ActionError(
                f"origin of moved statement {rec.sid} is gone; "
                "affecting transformations were not undone first")
        self.program.detach(rec.sid)
        resolved = rec.from_loc.resolve(self.program, orderer=self.orderer,
                                        self_sid=rec.sid)
        assert resolved is not None
        ref, idx = resolved
        self.program.insert(ref, idx, self.program.node(rec.sid))
        self._emit(rec, EventKind.STMT_MOVED, rec.sid,
                   (here.container, ref), inverse=True)

    def _invert_copy(self, rec: ActionRecord, undo_stamp: int) -> None:
        # inverse: Delete(c)
        if not self.program.is_attached(rec.sid):
            raise ActionError(f"copy {rec.sid} already detached")
        origin = Location.of_stmt(self.program, rec.sid)
        self.program.detach(rec.sid)
        self._emit(rec, EventKind.STMT_REMOVED, rec.sid, (origin.container,),
                   inverse=True)

    def _invert_modify(self, rec: ActionRecord, undo_stamp: int) -> None:
        # inverse: Modify(new_exp(a), exp)
        stmt = self.program.node(rec.sid)
        if rec.path == HEADER_PATH:
            assert rec.old_header is not None and rec.new_header is not None
            if not isinstance(stmt, Loop):
                raise ActionError(f"statement {rec.sid} is not a loop")
            current = HeaderSpec.of(stmt)
            if not _headers_equal(current, rec.new_header):
                raise ActionError(
                    f"loop {rec.sid} header diverged from the post pattern; "
                    "affecting transformations were not undone first")
            rec.old_header.install(stmt)
            self.program.touch(rec.sid)
            containers = ()
            parent = self.program.parent_of(rec.sid)
            if parent is not None:
                containers = (parent, (rec.sid, "body"))
            self._emit(rec, EventKind.HEADER_MODIFIED, rec.sid, containers,
                       inverse=True)
            return
        assert rec.path is not None and rec.old_expr is not None
        try:
            current = expr_at(stmt, rec.path)
        except KeyError as exc:
            raise ActionError(
                f"modified expression path {rec.path} no longer exists on "
                f"statement {rec.sid}: {exc}") from exc
        assert rec.new_expr is not None
        if not exprs_equal(current, rec.new_expr):
            raise ActionError(
                f"expression at {rec.sid}:{rec.path} diverged from the post "
                "pattern; affecting transformations were not undone first")
        replace_expr(stmt, rec.path, rec.old_expr.clone())
        self.program.touch(rec.sid)
        containers = ()
        parent = self.program.parent_of(rec.sid)
        if parent is not None:
            containers = (parent,)
        self._emit(rec, EventKind.EXPR_MODIFIED, rec.sid, containers,
                   inverse=True)


def _headers_equal(a: HeaderSpec, b: HeaderSpec) -> bool:
    return (a.var == b.var and exprs_equal(a.lower, b.lower)
            and exprs_equal(a.upper, b.upper) and exprs_equal(a.step, b.step))
