"""Action events driving the event-driven regional undo (§4.4).

Every primitive action — forward or inverse — emits an :class:`Event`
describing *where* the program changed: which statements were touched and
which containers (hence basic blocks / PDG regions) are dirty.  The
affected-region computation in :mod:`repro.core.regions` and the
incremental analysis layer consume these instead of re-scanning the whole
program, which is precisely the paper's space-coordinate optimisation.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

from repro.lang.ast_nodes import ContainerRef


class EventKind(enum.Enum):
    """What kind of change an action made."""

    STMT_REMOVED = "stmt_removed"
    STMT_INSERTED = "stmt_inserted"
    STMT_MOVED = "stmt_moved"
    EXPR_MODIFIED = "expr_modified"
    HEADER_MODIFIED = "header_modified"


@dataclass(frozen=True)
class Event:
    """One program-change event.

    Attributes
    ----------
    kind:
        The change category.
    sid:
        The statement that was inserted/removed/moved/modified.
    containers:
        Containers whose statement lists or data flow changed — for a
        move these are both the source and the destination containers.
    stamp:
        Order stamp of the transformation (or edit, or undo) responsible.
    action_id:
        Id of the responsible primitive action.
    inverse:
        True when the event was produced by an *inverse* action (undo).
    """

    kind: EventKind
    sid: int
    containers: Tuple[ContainerRef, ...]
    stamp: int
    action_id: int
    inverse: bool = False


def _event_key(event: Event) -> str:
    """Deterministic text encoding of one event (digest preimage)."""
    return (f"{event.kind.value}|{event.sid}|{event.containers!r}|"
            f"{event.stamp}|{event.action_id}|{int(event.inverse)}")


#: Digest of the empty event log.
EMPTY_LOG_DIGEST = hashlib.sha256(b"eventlog").hexdigest()


class EventLog:
    """Accumulates events; consumers drain slices by cursor.

    The log is append-only, so it maintains a *chained* running digest:
    ``digest_{i+1} = sha256(digest_i || key(event_i))``.  The incremental
    fingerprint reads :attr:`digest` in O(1) instead of re-serializing
    the whole log.
    """

    def __init__(self) -> None:
        self._events: List[Event] = []
        self._digest = EMPTY_LOG_DIGEST

    @property
    def digest(self) -> str:
        """Running chained digest over every event emitted so far."""
        return self._digest

    def emit(self, event: Event) -> None:
        """Append an event to the log."""
        self._events.append(event)
        self._digest = hashlib.sha256(
            (self._digest + _event_key(event)).encode("utf-8")).hexdigest()

    def cursor(self) -> int:
        """Current end-of-log position, for later :meth:`since` calls."""
        return len(self._events)

    def since(self, cursor: int) -> List[Event]:
        """Events emitted at or after ``cursor``."""
        return self._events[cursor:]

    def all(self) -> List[Event]:
        """Every event emitted so far (copy)."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)
