"""Transformation interactions: Table 4's perform-create matrix.

An ``x`` at row A, column B means "performing A can enable B".  Because
"dependencies established by chains of creations yield similar chains of
destruction when a transformation is destroyed, the reverse-destroy
dependencies exactly replicate the perform-create dependencies" (§4.3,
citing [13]) — so the same matrix, read as *reverse A may destroy B*,
drives the undo heuristic: after undoing ``t_i``, only subsequent
transformations whose kind is marked in ``t_i``'s row need a safety
re-check.

The paper publishes five rows (DCE, CSE, CTP, ICM, INX).  The remaining
five rows (CPP, CFO, LUR, SMI, FUS) are our derivations in the spirit of
Whitfield & Soffa [20, 21]; each transformation class documents its row
and flags whether it is published (``enables_published``).  The matrix is
assembled from those classes so code and documentation cannot drift.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from repro.transforms.registry import EXTENSION_ORDER, REGISTRY, TABLE4_ORDER

#: Table 4 order plus the extension transformations (PRV, PAR).
EXTENDED_ORDER: Tuple[str, ...] = tuple(TABLE4_ORDER) + tuple(EXTENSION_ORDER)

#: The five rows exactly as printed in the paper's Table 4.
PUBLISHED_ROWS: Dict[str, FrozenSet[str]] = {
    "dce": frozenset({"dce", "cse", "cpp", "icm", "fus", "inx"}),
    "cse": frozenset({"cse", "cpp", "fus"}),
    "ctp": frozenset({"dce", "cse", "cfo", "icm", "smi", "fus", "inx"}),
    "icm": frozenset({"cse", "icm", "fus", "inx"}),
    "inx": frozenset({"icm", "fus", "inx"}),
}


def enables(row: str) -> FrozenSet[str]:
    """Transformations that performing ``row`` can enable."""
    return REGISTRY[row].enables


def may_destroy(undone: str, other: str) -> bool:
    """Reverse-destroy lookup: can undoing ``undone`` break ``other``?"""
    return other in REGISTRY[undone].enables


def matrix() -> Dict[str, Dict[str, bool]]:
    """The full 10×10 matrix in Table 4 order."""
    return {row: {col: may_destroy(row, col) for col in TABLE4_ORDER}
            for row in TABLE4_ORDER}


def matrix_deviations() -> Dict[str, Tuple[FrozenSet[str], FrozenSet[str]]]:
    """Differences between implemented and published rows.

    Returns ``row → (extra, missing)``.  The comparison is scoped to the
    published Table 4 columns — extension columns (``par``, ``prv``)
    could not have been printed in 1994 and are not deviations.  The
    only expected deviation is CTP → CTP: the paper's whole-program
    constant propagator saturates in one application, while our
    occurrence-level CTP can enable itself (see
    :mod:`repro.transforms.ctp`); the self-entry is required for the
    reverse-destroy heuristic to stay sound.
    """
    out: Dict[str, Tuple[FrozenSet[str], FrozenSet[str]]] = {}
    for name, published in PUBLISHED_ROWS.items():
        impl = REGISTRY[name].enables & set(TABLE4_ORDER)
        extra = impl - published
        missing = published - impl
        if extra or missing:
            out[name] = (frozenset(extra), frozenset(missing))
    return out


#: the deviation we expect (and document); anything else is a bug.
EXPECTED_DEVIATIONS = {"ctp": (frozenset({"ctp"}), frozenset())}


def extended_matrix() -> Dict[str, Dict[str, bool]]:
    """The matrix over Table 4 order plus the extensions (PRV, PAR)."""
    return {row: {col: may_destroy(row, col) for col in EXTENDED_ORDER}
            for row in EXTENDED_ORDER}


def _render(order: Tuple[str, ...], m: Dict[str, Dict[str, bool]]) -> str:
    cols = [c.upper() for c in order]
    header = "     | " + " | ".join(f"{c:^3}" for c in cols) + " |"
    sep = "-" * len(header)
    lines = [header, sep]
    for row in order:
        marks = " | ".join(f"{'x' if m[row][c] else '-':^3}" for c in order)
        star = " " if REGISTRY[row].enables_published else "*"
        lines.append(f"{row.upper():>4}{star}| {marks} |")
    lines.append(sep)
    lines.append("rows marked * are derived (not printed in the paper)")
    return "\n".join(lines)


def render_table4() -> str:
    """ASCII rendering of Table 4 (for the benchmark harness)."""
    return _render(tuple(TABLE4_ORDER), matrix())


def render_extended_table4() -> str:
    """Table 4 plus the PRV/PAR rows and columns (``docs/PARALLEL.md``)."""
    return _render(EXTENDED_ORDER, extended_matrix())
