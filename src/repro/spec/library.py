"""Example specifications.

``DCE_SPEC`` re-derives dead-code elimination declaratively (validated
against the hand-written implementation in the tests).

``LRV_SPEC`` — **loop reversal** — is a transformation that exists
nowhere in the hand-written catalog: ``do i = l, u`` becomes
``do i = u, l, -1`` when the loop carries no dependence, contains no
I/O, and its index is private to the loop.  It exercises the generator
end to end: compiled from the spec, it is found, applied, safety-checked
after edits, and undone in independent order by machinery that has never
heard of it.
"""

from __future__ import annotations

from repro.spec.dsl import (
    DeleteStmt,
    ModifyOperand,
    ReverseHeader,
    TransformationSpec,
    const_expr,
    const_unit_header,
    dead_value,
    distinct,
    index_private,
    is_assign,
    is_loop,
    no_carried_dependence,
    no_io,
    scalar_target,
    sole_reaching_def,
)

#: declarative dead-code elimination (mirror of Table 2's DCE row).
DCE_SPEC = TransformationSpec(
    name="sdce",
    full_name="Dead Code Elimination (spec)",
    variables=("S",),
    domains={"S": "assign"},
    pre_conditions=[is_assign("S"), dead_value("S")],
    actions=[DeleteStmt("S")],
    # same interaction row as the hand-written DCE
    enables=frozenset({"dce", "sdce", "cse", "cpp", "icm", "fus", "inx"}),
)

def _ctp_derive(program, cache, binding):
    """Operand positions in ``Sj`` where ``Si``'s constant propagates."""
    from repro.lang.ast_nodes import Const, expr_at
    from repro.transforms.ctp import _use_paths

    from repro.lang.ast_nodes import Assign, VarRef

    d = program.node(binding["Si"])
    u = program.node(binding["Sj"])
    # defensive: safety re-checks call derive after preconditions were
    # *benignly* skipped (an active transformation rewrote the pattern),
    # so the shape guarantees may no longer hold.
    if not (isinstance(d, Assign) and isinstance(d.target, VarRef)
            and isinstance(d.expr, Const)):
        return []
    name = d.target.name
    value = d.expr.value
    out = []
    for path in _use_paths(u):
        if expr_at(u, path).name == name:
            out.append({"path": path, "new": Const(value)})
    return out


#: declarative constant propagation — a two-variable relational pattern
#: (mirror of Table 2's CTP row), exercising the backtracking matcher.
CTP_SPEC = TransformationSpec(
    name="sctp",
    full_name="Constant Propagation (spec)",
    variables=("Si", "Sj"),
    domains={"Si": "assign", "Sj": "any"},
    pre_conditions=[
        is_assign("Si"),
        scalar_target("Si"),
        const_expr("Si"),
        distinct("Si", "Sj"),
        sole_reaching_def("Si", "Sj"),
    ],
    actions=[ModifyOperand("Sj")],
    derive=_ctp_derive,
    enables=frozenset({"dce", "sdce", "cse", "sctp", "cfo", "icm", "smi",
                       "fus", "inx"}),
)


#: loop reversal — a genuinely new transformation defined only as a spec.
LRV_SPEC = TransformationSpec(
    name="lrv",
    full_name="Loop Reversal",
    variables=("L",),
    domains={"L": "loop"},
    pre_conditions=[
        is_loop("L"),
        const_unit_header("L"),
        no_carried_dependence("L"),
        no_io("L"),
        index_private("L"),
    ],
    actions=[ReverseHeader("L")],
    # reversal flips carried-direction reasoning: direction-sensitive
    # loop transformations applied after it may depend on it.
    enables=frozenset({"lrv", "inx", "fus", "icm"}),
)
