"""Spec compiler: declarative spec → fully functional Transformation.

Everything a hand-written transformation provides is derived:

* ``find``       — enumerate bindings over the variable domains and keep
                   those satisfying every precondition;
* ``apply``      — execute the action templates through the shared
                   :class:`~repro.core.actions.ActionApplier`;
* ``check_safety``
                 — re-evaluate the preconditions on the current program
                   (the disabling conditions *are* the negations), with
                   the same benign-divergence attribution the hand-written
                   transformations use;
* ``check_reversibility``
                 — generated from the action templates: ``Delete``/
                   ``Move`` targets get the deleted/copied-context and
                   moved-after checks, ``Modify`` positions get the
                   later-modification and divergence checks;
* Table 2/3 rows — rendered from the spec.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.incremental import AnalysisCache
from repro.core.actions import HEADER_PATH, HeaderSpec
from repro.core.annotations import AnnotationStore
from repro.core.history import TransformationRecord
from repro.core.locations import Location
from repro.lang.ast_nodes import (
    Assign,
    Const,
    Loop,
    Program,
    Stmt,
    UnaryOp,
    exprs_equal,
)
from repro.spec.dsl import (
    ActionTemplate,
    Binding,
    DeleteStmt,
    HoistBeforeLoop,
    ModifyOperand,
    ReverseHeader,
    TransformationSpec,
)
from repro.transforms.base import (
    ApplyContext,
    Opportunity,
    ReversibilityResult,
    SafetyResult,
    Transformation,
    Violation,
    container_context_violation,
    modified_after,
    moved_after,
    stmt_deleted_after,
)


class SpecCompileError(ValueError):
    """Raised when a spec cannot be compiled."""


def _domain_ok(stmt: Stmt, domain: str) -> bool:
    if domain == "assign":
        return isinstance(stmt, Assign)
    if domain == "loop":
        return isinstance(stmt, Loop)
    if domain == "any":
        return True
    raise SpecCompileError(f"unknown variable domain {domain!r}")


class SpecTransformation(Transformation):
    """A transformation interpreted from a :class:`TransformationSpec`."""

    def __init__(self, spec: TransformationSpec):
        self.spec = spec
        self.name = spec.name
        self.full_name = spec.full_name
        self.enables = spec.enables
        self.enables_published = False

    # -- find -----------------------------------------------------------------

    def find(self, program: Program, cache: AnalysisCache) -> List[Opportunity]:
        """Backtracking join over the pattern variables.

        Each predicate is evaluated as soon as every variable it
        mentions is bound, pruning the enumeration early.
        """
        out: List[Opportunity] = []
        stmts = list(program.walk())
        variables = self.spec.variables
        preds_at: Dict[int, List] = {i: [] for i in range(len(variables))}
        for pred in self.spec.pre_conditions:
            last = max(variables.index(v) for v in pred.vars)
            preds_at[last].append(pred)

        def emit(binding: Binding) -> None:
            where = ", ".join(f"{v}=S{binding[v]}" for v in variables)
            if self.spec.derive is not None:
                for extra in self.spec.derive(program, cache, binding):
                    out.append(Opportunity(
                        self.name, {"binding": dict(binding), **extra},
                        f"{self.spec.name} @ {where}"))
            else:
                out.append(Opportunity(
                    self.name, {"binding": dict(binding)},
                    f"{self.spec.pre_pattern_text()} @ {where}"))

        def match(i: int, binding: Binding) -> None:
            if i == len(variables):
                emit(binding)
                return
            var = variables[i]
            domain = self.spec.domains.get(var, "any")
            for s in stmts:
                if not _domain_ok(s, domain):
                    continue
                binding[var] = s.sid
                if all(p.holds(program, cache, binding)
                       for p in preds_at[i]):
                    match(i + 1, binding)
                del binding[var]

        match(0, {})
        return out

    # -- apply ------------------------------------------------------------------

    def apply_actions(self, ctx: ApplyContext, opp: Opportunity) -> None:
        binding: Binding = opp.params["binding"]
        ctx.record.pre_pattern = {"binding": dict(binding),
                                  "spec": self.spec.name}
        if "path" in opp.params:
            ctx.record.pre_pattern["derived"] = {
                "path": opp.params["path"],
                "new": opp.params["new"].clone(),
            }
        post: Dict = {"binding": dict(binding), "pieces": []}
        for tmpl in self.spec.actions:
            sid = binding[tmpl.var]
            if isinstance(tmpl, DeleteStmt):
                act = ctx.delete(sid)
                post["pieces"].append(("deleted", sid, act.from_loc))
            elif isinstance(tmpl, HoistBeforeLoop):
                loop_sid = binding[tmpl.loop_var]
                act = ctx.move(sid, Location.before(ctx.program, loop_sid))
                post["pieces"].append(("moved", sid, act.from_loc))
            elif isinstance(tmpl, ReverseHeader):
                loop = ctx.program.node(sid)
                if not isinstance(loop, Loop):
                    raise SpecCompileError("ReverseHeader needs a loop")
                new = HeaderSpec(loop.var, loop.upper.clone(),
                                 loop.lower.clone(), Const(-1))
                ctx.modify_header(sid, new)
                post["pieces"].append(("header", sid, new))
            elif isinstance(tmpl, ModifyOperand):
                path = opp.params["path"]
                new = opp.params["new"]
                ctx.modify(sid, path, new)
                post["pieces"].append(("modified", sid, path, new.clone()))
            else:  # pragma: no cover - vocabulary is closed
                raise SpecCompileError(f"unknown template {tmpl!r}")
        ctx.record.post_pattern = post

    # -- safety: the negated preconditions, re-evaluated -------------------------

    def _preimage_swaps(self, program: Program,
                        record: TransformationRecord) -> List:
        """Structurally roll back the record's own ``Modify`` actions.

        The preconditions describe the *pre*-transformation code (a
        reversed loop no longer has a unit step), so they must be
        evaluated against the pre-image.  Each swap is performed only
        when the current tree still matches the action's installed
        value; positions clobbered by later transformations are left
        alone (their divergence is attributed separately).  Returns the
        swaps performed so the caller can redo them.
        """
        from repro.core.actions import ActionKind
        from repro.lang.ast_nodes import expr_at, replace_expr

        done = []
        for act in reversed(record.actions):
            if act.kind is not ActionKind.MODIFY:
                continue
            if not program.is_attached(act.sid):
                continue
            stmt = program.node(act.sid)
            if act.path == HEADER_PATH:
                assert act.old_header is not None and act.new_header is not None
                current = HeaderSpec.of(stmt)
                if (current.var == act.new_header.var
                        and exprs_equal(current.lower, act.new_header.lower)
                        and exprs_equal(current.upper, act.new_header.upper)
                        and exprs_equal(current.step, act.new_header.step)):
                    act.old_header.install(stmt)
                    done.append(("header", act))
            else:
                try:
                    current = expr_at(stmt, act.path)
                except KeyError:
                    continue
                if act.new_expr is not None and exprs_equal(current,
                                                            act.new_expr):
                    replace_expr(stmt, act.path, act.old_expr.clone())
                    done.append(("expr", act))
        if done:
            program.touch()
        return done

    def _redo_swaps(self, program: Program, done: List) -> None:
        from repro.lang.ast_nodes import replace_expr

        for kind, act in reversed(done):
            stmt = program.node(act.sid)
            if kind == "header":
                act.new_header.install(stmt)
            else:
                replace_expr(stmt, act.path, act.new_expr.clone())
        if done:
            program.touch()

    def check_safety(self, ctx, record: TransformationRecord) -> SafetyResult:
        program, cache = ctx.program, ctx.cache
        binding: Binding = record.pre_pattern["binding"]
        t = record.stamp
        # statements the actions removed/relocated are evaluated as the
        # transformation left them; a missing pattern statement deleted
        # by an active later transformation is benign.
        for var, sid in binding.items():
            if not program.has_node(sid):
                return SafetyResult.broken(Violation(
                    f"pattern variable {var} vanished",
                    code=f"{self.name}.safety.pattern-var-vanished",
                    witness={"var": var, "sid": sid}))
        # build the pre-image: restore deleted subjects (DCE-style probe)
        # and roll back this record's own modifications.
        deleted = [(piece[1], piece[2]) for piece in
                   record.post_pattern["pieces"] if piece[0] == "deleted"]
        restored: List[int] = []
        swaps: List = []
        try:
            for sid, loc in deleted:
                if program.is_attached(sid):
                    continue
                resolved = loc.resolve(program)
                if resolved is None:
                    continue  # context gone entirely: nothing to re-check
                ref, idx = resolved
                program.insert(ref, idx, program.node(sid))
                restored.append(sid)
            swaps = self._preimage_swaps(program, record)
            for pred in self.spec.pre_conditions:
                if not pred.holds(program, cache, binding):
                    # benign when the divergence is an active later
                    # transformation's doing
                    if any(ctx.attributed_to_active(
                               sid, t, ("md", "mv", "add", "cp", "del"))
                           or (program.is_attached(sid)
                               and ctx.subtree_touched_by_active(sid, t))
                           for sid in binding.values()):
                        continue
                    return SafetyResult.broken(Violation(
                        pred.negation,
                        code=f"{self.name}.safety.precondition",
                        witness={"predicate": pred.negation}))
            # value-carrying patterns: the parameters recorded at apply
            # time must still be derivable from the pre-image (e.g. the
            # propagated constant must still be the value the definition
            # produces).
            derived = record.pre_pattern.get("derived")
            if derived is not None and self.spec.derive is not None:
                candidates = self.spec.derive(program, cache, binding)
                ok = any(c.get("path") == derived["path"]
                         and exprs_equal(c.get("new"), derived["new"])
                         for c in candidates)
                if not ok:
                    if any(ctx.attributed_to_active(
                               sid, t, ("md", "mv", "add", "cp", "del"))
                           for sid in binding.values()):
                        pass  # an active transformation's doing: benign
                    else:
                        return SafetyResult.broken(Violation(
                            "the recorded replacement is no longer "
                            "derivable from the pattern",
                            code=f"{self.name}.safety.underivable",
                            witness={"path": list(derived["path"])}))
        finally:
            self._redo_swaps(program, swaps)
            for sid in restored:
                program.detach(sid)
        return SafetyResult.ok()

    # -- reversibility: generated from the action templates ----------------------

    def check_reversibility(self, program: Program, store: AnnotationStore,
                            record: TransformationRecord) -> ReversibilityResult:
        t = record.stamp
        for piece in record.post_pattern["pieces"]:
            kind = piece[0]
            if kind == "deleted":
                _k, sid, loc = piece
                v = container_context_violation(program, store, loc, t)
                if v is not None:
                    return ReversibilityResult.blocked(v)
                if loc.resolve(program) is None:
                    return ReversibilityResult.blocked(Violation(
                        f"original location of S{sid} is unresolvable",
                        code=f"{self.name}.reversibility."
                             "location-unresolvable",
                        witness={"sid": sid,
                                 "container": list(loc.container)}))
            elif kind == "moved":
                _k, sid, loc = piece
                v = stmt_deleted_after(program, store, sid, t)
                if v is not None:
                    return ReversibilityResult.blocked(v)
                v = moved_after(program, store, sid, t)
                if v is not None:
                    return ReversibilityResult.blocked(v)
                v = container_context_violation(program, store, loc, t)
                if v is not None:
                    return ReversibilityResult.blocked(v)
            elif kind == "header":
                _k, sid, new_header = piece
                v = stmt_deleted_after(program, store, sid, t)
                if v is not None:
                    return ReversibilityResult.blocked(v)
                v = modified_after(program, store, sid, HEADER_PATH, t)
                if v is not None:
                    return ReversibilityResult.blocked(v)
                loop = program.node(sid)
                if not isinstance(loop, Loop) or not (
                        loop.var == new_header.var
                        and exprs_equal(loop.lower, new_header.lower)
                        and exprs_equal(loop.upper, new_header.upper)
                        and exprs_equal(loop.step, new_header.step)):
                    return ReversibilityResult.blocked(Violation(
                        f"header of S{sid} diverged from the post pattern",
                        code=f"{self.name}.reversibility.header-diverged",
                        witness={"sid": sid}))
            elif kind == "modified":
                _k, sid, path, new = piece
                v = stmt_deleted_after(program, store, sid, t)
                if v is not None:
                    return ReversibilityResult.blocked(v)
                v = modified_after(program, store, sid, path, t)
                if v is not None:
                    return ReversibilityResult.blocked(v)
        return ReversibilityResult.ok()

    # -- generated documentation ---------------------------------------------------

    def table2_row(self) -> Dict[str, str]:
        return {
            "transformation": f"{self.full_name} ({self.name.upper()}) [spec]",
            "pre_pattern": self.spec.pre_pattern_text(),
            "primitive_actions": self.spec.actions_text(),
            "post_pattern": "generated from action templates",
        }

    def table3_row(self) -> Dict[str, List[str]]:
        safety = []
        for p in self.spec.pre_conditions:
            acts = "/".join(a.capitalize() for a in p.disabling_actions)
            safety.append(f"{p.negation} (via {acts})")
        reversibility = []
        for tmpl in self.spec.actions:
            if isinstance(tmpl, DeleteStmt):
                reversibility.append(
                    f"Delete/Copy context of {tmpl.var}'s location")
            elif isinstance(tmpl, HoistBeforeLoop):
                reversibility.append(
                    f"Move {tmpl.var} again / destroy its origin")
            elif isinstance(tmpl, (ReverseHeader,)):
                reversibility.append(f"Modify {tmpl.var}'s header again")
            elif isinstance(tmpl, ModifyOperand):
                reversibility.append(
                    f"Modify the replaced position of {tmpl.var} again")
        return {"safety": safety, "reversibility": reversibility}


def compile_spec(spec: TransformationSpec) -> SpecTransformation:
    """Compile a spec into a transformation instance."""
    if not spec.name or not spec.variables or not spec.actions:
        raise SpecCompileError("spec needs a name, variables, and actions")
    return SpecTransformation(spec)


def register_spec(spec: TransformationSpec,
                  registry: Optional[Dict] = None) -> SpecTransformation:
    """Compile ``spec`` and add it to the transformation registry.

    Registered spec transformations are first-class citizens: engines
    find and apply them, and the undo machinery handles them untouched —
    the point of the paper's transformation-independent design.
    """
    from repro.transforms.registry import REGISTRY

    reg = registry if registry is not None else REGISTRY
    if spec.name in reg:
        raise SpecCompileError(f"{spec.name!r} already registered")
    t = compile_spec(spec)
    reg[spec.name] = t
    return t
