"""The specification vocabulary: pattern predicates and action templates.

A :class:`TransformationSpec` consists of

* **pattern variables** — names bound to statements during matching
  (``"S"`` for the subject statement, ``"L"`` for a loop, ...);
* **preconditions** — :class:`Pred` instances over the bound statements,
  evaluated against the live analyses.  Each predicate knows how to
  *describe its own negation* and which primitive-action kinds can
  establish that negation: this is exactly the information Table 3
  tabulates, so the compiled transformation's disabling-condition rows
  are generated, not hand-written;
* **action templates** — what to do with the binding, expressed over the
  same five primitive actions the whole system uses.

The predicate vocabulary is deliberately small but real: everything the
compiled DCE and loop-reversal specs need, with analysis-backed
evaluation (liveness, dependence, trip counts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.incremental import AnalysisCache
from repro.lang.ast_nodes import (
    ArrayRef,
    Assign,
    Const,
    Loop,
    Program,
    Stmt,
    VarRef,
)
from repro.transforms.loop_utils import const_trip_count, contains_io, subtree_stmts, var_referenced

#: a binding of pattern variables to statement sids.
Binding = Dict[str, int]


@dataclass(frozen=True)
class Pred:
    """One precondition over bound pattern variables.

    Attributes
    ----------
    name:
        Predicate identifier (rendered in Table 2's pre-pattern column).
    vars:
        The pattern variables it constrains.
    test:
        ``(program, cache, binding) -> bool``.
    negation:
        Human-readable safety-disabling condition (Table 3 row text).
    disabling_actions:
        The primitive-action kinds whose application can establish the
        negation — the "detection of the disabling actions" the paper
        wants generated.  ``"edit"`` marks †-conditions reachable only
        through edits.
    """

    name: str
    vars: Tuple[str, ...]
    test: Callable[[Program, AnalysisCache, Binding], bool]
    negation: str
    disabling_actions: Tuple[str, ...] = ("add", "modify", "move", "delete")

    def holds(self, program: Program, cache: AnalysisCache,
              binding: Binding) -> bool:
        """Evaluate the predicate against a binding."""
        return self.test(program, cache, binding)

    def describe(self) -> str:
        """Compact rendering for generated documentation."""
        return f"{self.name}({', '.join(self.vars)})"


# ---------------------------------------------------------------------------
# Predicate library
# ---------------------------------------------------------------------------


def is_assign(var: str) -> Pred:
    """The bound statement is an assignment."""
    def test(program, cache, b):
        return isinstance(program.node(b[var]), Assign)

    return Pred("is_assign", (var,), test,
                f"{var} is no longer an assignment", ("modify", "delete"))


def is_loop(var: str) -> Pred:
    """The bound statement is a ``do`` loop."""
    def test(program, cache, b):
        return isinstance(program.node(b[var]), Loop)

    return Pred("is_loop", (var,), test,
                f"{var} is no longer a loop", ("modify", "delete"))


def dead_value(var: str) -> Pred:
    """The value computed by the bound assignment has no use."""

    def test(program, cache, b):
        stmt = program.node(b[var])
        if not isinstance(stmt, Assign):
            return False
        if isinstance(stmt.target, VarRef):
            key = stmt.target.name
        elif isinstance(stmt.target, ArrayRef):
            key = "@" + stmt.target.name
        else:
            return False
        return cache.dataflow().is_dead(b[var], key)

    return Pred("dead_value", (var,), test,
                f"a statement using the value computed by {var} appears "
                f"on a path {var} reaches",
                ("add", "modify", "move"))


def no_io(var: str) -> Pred:
    """The bound subtree contains no I/O statement."""
    def test(program, cache, b):
        return not contains_io(program.node(b[var]))

    return Pred("no_io", (var,), test,
                f"an I/O statement entered {var}", ("add", "move"))


def no_carried_dependence(var: str) -> Pred:
    """No dependence is carried by the bound loop (DOALL-style)."""

    def test(program, cache, b):
        from repro.analysis.depend import loop_parallelizable

        loop = program.node(b[var])
        if not isinstance(loop, Loop):
            return False
        return loop_parallelizable(cache.dependences(), loop)

    return Pred("no_carried_dependence", (var,), test,
                f"a loop-carried dependence appeared in {var}",
                ("add", "modify", "move"))


def const_unit_header(var: str) -> Pred:
    """The bound loop has constant bounds, unit step, trip >= 1."""
    def test(program, cache, b):
        loop = program.node(b[var])
        return (isinstance(loop, Loop)
                and isinstance(loop.lower, Const)
                and isinstance(loop.upper, Const)
                and isinstance(loop.step, Const)
                and loop.step.value == 1
                and const_trip_count(loop) is not None
                and const_trip_count(loop) >= 1)

    return Pred("const_unit_header", (var,), test,
                f"the header of {var} is no longer a constant unit-step "
                "range", ("modify",))


def const_expr(var: str) -> Pred:
    """The bound assignment's right-hand side is a literal constant."""

    def test(program, cache, b):
        stmt = program.node(b[var])
        return isinstance(stmt, Assign) and isinstance(stmt.expr, Const)

    return Pred("const_expr", (var,), test,
                f"{var} no longer assigns a constant", ("modify", "delete"))


def scalar_target(var: str) -> Pred:
    """The bound assignment's target is a scalar variable."""
    def test(program, cache, b):
        stmt = program.node(b[var])
        return isinstance(stmt, Assign) and isinstance(stmt.target, VarRef)

    return Pred("scalar_target", (var,), test,
                f"{var} no longer assigns a scalar", ("modify", "delete"))


def sole_reaching_def(def_var: str, use_var: str) -> Pred:
    """``def_var`` is the unique definition of its target reaching
    ``use_var`` (a relational, two-variable predicate)."""

    def test(program, cache, b):
        d = program.node(b[def_var])
        if not isinstance(d, Assign) or not isinstance(d.target, VarRef):
            return False
        name = d.target.name
        df = cache.dataflow()
        defs = {x for x in df.reach_in.get(b[use_var], frozenset())
                if x[1] == name}
        return defs == {(b[def_var], name)}

    return Pred("sole_reaching_def", (def_var, use_var), test,
                f"{def_var} is no longer the sole definition reaching "
                f"{use_var}", ("add", "move", "delete", "modify"))


def distinct(*vars: str) -> Pred:
    """The bound pattern variables are pairwise different statements."""
    def test(program, cache, b):
        sids = [b[v] for v in vars]
        return len(sids) == len(set(sids))

    return Pred("distinct", tuple(vars), test,
                "pattern variables collapsed", ())


def index_private(var: str) -> Pred:
    """The loop's index variable is referenced nowhere outside it."""

    def test(program, cache, b):
        loop = program.node(b[var])
        if not isinstance(loop, Loop):
            return False
        inside = {s.sid for s in subtree_stmts(loop)}
        return not var_referenced(program, loop.var, exclude_sids=inside)

    return Pred("index_private", (var,), test,
                f"the index of {var} is referenced outside the loop",
                ("add", "modify", "move", "edit"))


# ---------------------------------------------------------------------------
# Action templates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ActionTemplate:
    """Base class for action templates over a binding."""

    var: str

    def describe(self) -> str:  # pragma: no cover - overridden
        """Compact rendering for generated documentation."""
        return f"?({self.var})"


@dataclass(frozen=True)
class DeleteStmt(ActionTemplate):
    """``Delete(S)`` — with the generated post pattern ``Del_stmt S;
    ptr orig_loc`` and Table 3's deleted/copied-context reversibility
    conditions."""

    def describe(self) -> str:
        """Compact rendering for generated documentation."""
        return f"Delete({self.var})"


@dataclass(frozen=True)
class HoistBeforeLoop(ActionTemplate):
    """``Move(S, L.prev)`` — hoist ``var`` before loop ``loop_var``."""

    loop_var: str = "L"

    def describe(self) -> str:
        """Compact rendering for generated documentation."""
        return f"Move({self.var}, {self.loop_var}.prev)"


@dataclass(frozen=True)
class ModifyOperand(ActionTemplate):
    """``Modify(exp(S, path), new)`` — path/new supplied by the binding
    params (for specs whose finder computes them)."""

    def describe(self) -> str:
        """Compact rendering for generated documentation."""
        return f"Modify(exp({self.var}, pos), new)"


@dataclass(frozen=True)
class ReverseHeader(ActionTemplate):
    """``Modify(L.header, reversed)`` — ``do i = l, u`` becomes
    ``do i = u, l, -1``."""

    def describe(self) -> str:
        """Compact rendering for generated documentation."""
        return f"Modify({self.var}.header, reversed)"


# ---------------------------------------------------------------------------
# The spec
# ---------------------------------------------------------------------------


@dataclass
class TransformationSpec:
    """A declarative transformation definition."""

    name: str
    full_name: str
    #: pattern variables in matching order; the matcher enumerates
    #: candidate statements for each (backtracking join: predicates are
    #: checked as soon as all their variables are bound).
    variables: Tuple[str, ...]
    #: candidate filter per variable: statement-kind shorthands
    #: (``"assign"``/``"loop"``/``"any"``).
    domains: Dict[str, str]
    pre_conditions: List[Pred]
    actions: List[ActionTemplate]
    #: Table 4 row for the reverse-destroy heuristic.
    enables: frozenset = frozenset()
    #: optional parameter derivation for bindings that need more than
    #: statement identities (e.g. the operand position a ``Modify``
    #: rewrites): ``(program, cache, binding) -> list of param dicts``,
    #: one opportunity per dict; ``[]`` rejects the binding.
    derive: Optional[Callable] = None

    def pre_pattern_text(self) -> str:
        """Rendered pre pattern (the generated Table 2 column)."""
        return "; ".join(p.describe() for p in self.pre_conditions)

    def actions_text(self) -> str:
        """Rendered primitive-action templates."""
        return "; ".join(a.describe() for a in self.actions)
