"""Transformation specifications — the paper's stated next step.

The conclusion of the paper: "Another step will be to investigate
techniques to automatically generate code for the detection of the
disabling actions of the safety and reversibility conditions of
transformations from the transformation specifications."  This package
implements that step, in the spirit of Whitfield & Soffa's
specification-driven transformation generators [5, 21]:

* :mod:`repro.spec.dsl` — a small declarative vocabulary of
  preconditions (pattern variables bound to statements, predicates over
  them) and primitive-action templates;
* :mod:`repro.spec.compile` — compiles a spec into a fully functional
  :class:`~repro.transforms.base.Transformation`: the opportunity finder
  enumerates bindings satisfying the preconditions, the application runs
  the action templates, the **safety-disabling conditions are the
  negated preconditions** (re-checked with divergence attribution), and
  the **reversibility-disabling conditions are derived from the action
  templates** (deleted/copied context for ``Delete``/``Move`` targets,
  later modification for ``Modify`` positions) — no hand-written
  checking code.

The test-suite validates the generator two ways: a spec-defined DCE
behaves exactly like the hand-written one, and a *new* transformation —
loop reversal (LRV), which exists nowhere in the hand-written catalog —
is defined purely as a spec and participates fully in independent-order
undo.
"""

from repro.spec.dsl import (
    ActionTemplate,
    DeleteStmt,
    HoistBeforeLoop,
    ModifyOperand,
    Pred,
    ReverseHeader,
    TransformationSpec,
)
from repro.spec.compile import SpecTransformation, compile_spec, register_spec
from repro.spec.library import CTP_SPEC, DCE_SPEC, LRV_SPEC

__all__ = [
    "ActionTemplate",
    "DeleteStmt",
    "HoistBeforeLoop",
    "ModifyOperand",
    "Pred",
    "ReverseHeader",
    "TransformationSpec",
    "SpecTransformation",
    "compile_spec",
    "register_spec",
    "CTP_SPEC",
    "DCE_SPEC",
    "LRV_SPEC",
]
