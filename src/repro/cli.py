"""An interactive transformation session — PIVOT's textual cousin.

The paper's undo facility lives in an interactive parallelization
environment [5]; this module provides a command-line equivalent::

    python -m repro program.loop

Commands (also ``help`` inside the session)::

    show [labels]        print the current program
    opps [name]          list opportunities (all kinds, or one)
    apply <name> [k]     apply the k-th opportunity of a transformation
    history              the applied-transformation history
    undo <stamp>         independent-order undo (Figure 4)
    undo-lifo <stamp>    reverse-order undo to a target [5]
    safety [stamp]       safety re-check (one record or all)
    revers [stamp]       reversibility (post-pattern) status
    view                 the two-level APDG/ADAG representation
    cost                 static cost/parallelism estimate
    table4               the interaction matrix
    edit-del <sid>       user edit: delete statement
    edit-unsafe          find & remove transformations edits broke
    batch <verb args> [; <verb args>]...
                         run a ;-separated command group as one unit
    quit

Every command is a pure function of the session state, so the test
suite drives the same code paths the interactive loop uses.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List, Optional

from repro.core.commands import (
    ApplyCommand,
    CommandError,
    EditCommand,
    UndoCommand,
    UndoLifoCommand,
    parse_batch,
)
from repro.core.engine import TransformationEngine
from repro.core.interactions import render_table4
from repro.core.undo import UndoError
from repro.edit.edits import EditReport
from repro.edit.invalidate import remove_unsafe
from repro.lang.parser import ParseError, parse_program
from repro.model.costmodel import estimate_cost
from repro.repr2 import TwoLevelRepresentation


class CliSession:
    """One interactive session over one program."""

    def __init__(self, source: str):
        self.engine = TransformationEngine(parse_program(source))
        self._pending_edits: List[EditReport] = []
        self._commands: Dict[str, Callable[[List[str]], str]] = {
            "show": self.cmd_show,
            "opps": self.cmd_opps,
            "apply": self.cmd_apply,
            "history": self.cmd_history,
            "undo": self.cmd_undo,
            "undo-lifo": self.cmd_undo_lifo,
            "safety": self.cmd_safety,
            "revers": self.cmd_revers,
            "view": self.cmd_view,
            "cost": self.cmd_cost,
            "table2": self.cmd_table2,
            "table3": self.cmd_table3,
            "table4": self.cmd_table4,
            "edit-del": self.cmd_edit_del,
            "edit-unsafe": self.cmd_edit_unsafe,
            "batch": self.cmd_batch,
            "help": self.cmd_help,
        }

    # -- dispatch --------------------------------------------------------------

    def execute(self, line: str) -> str:
        """Run one command line; returns the text to display."""
        parts = line.strip().split()
        if not parts:
            return ""
        cmd, args = parts[0], parts[1:]
        fn = self._commands.get(cmd)
        if fn is None:
            return f"unknown command {cmd!r} (try 'help')"
        try:
            return fn(args)
        except (CommandError, UndoError, ParseError) as exc:
            return f"error: {exc}"
        except (KeyError, IndexError, ValueError) as exc:
            return f"error: bad argument ({exc})"

    # -- commands ----------------------------------------------------------------

    def cmd_show(self, args: List[str]) -> str:
        """``show [labels]`` — print the current program."""
        return self.engine.source(show_labels=bool(args and
                                                   args[0] == "labels"))

    def cmd_opps(self, args: List[str]) -> str:
        """``opps [name]`` — list opportunities."""
        names = [args[0]] if args else sorted(self.engine.registry)
        lines = []
        for name in names:
            for k, opp in enumerate(self.engine.find(name)):
                lines.append(f"  {name}[{k}]: {opp.description}")
        return "\n".join(lines) if lines else "(no opportunities)"

    def cmd_apply(self, args: List[str]) -> str:
        """``apply <name> [k]`` — apply the k-th opportunity."""
        name = args[0]
        k = int(args[1]) if len(args) > 1 else 0
        opps = self.engine.find(name)
        if not opps:
            return f"no {name} opportunity"
        if not 0 <= k < len(opps):
            return f"index {k} out of range (0..{len(opps) - 1})"
        cmd = ApplyCommand.from_opportunity(opps[k])
        self.engine.execute(cmd)
        return f"applied t{cmd.stamp}: {name} — {opps[k].description}"

    def cmd_history(self, args: List[str]) -> str:
        """``history`` — the transformation history."""
        text = self.engine.history.describe()
        return text if text else "(empty history)"

    def cmd_undo(self, args: List[str]) -> str:
        """``undo <stamp>`` — independent-order undo (Figure 4)."""
        stamp = int(args[0])
        report = self.engine.execute(UndoCommand(stamp=stamp))
        out = [f"undone: {report.undone}"]
        if report.affecting:
            out.append(f"affecting (peeled first): {report.affecting}")
        if report.affected:
            out.append(f"affected (rippled): {report.affected}")
        out.append(f"checks: {report.reversibility_checks} reversibility, "
                   f"{report.safety_checks} safety "
                   f"({report.heuristic_skips} heuristic skips, "
                   f"{report.region_skips} region skips)")
        return "\n".join(out)

    def cmd_undo_lifo(self, args: List[str]) -> str:
        """``undo-lifo <stamp>`` — reverse-order undo [5]."""
        stamp = int(args[0])
        report = self.engine.execute(UndoLifoCommand(stamp=stamp))
        return (f"undone (last-first): {report.undone}\n"
                f"collateral removals: {report.collateral}")

    def cmd_safety(self, args: List[str]) -> str:
        """``safety [stamp]`` — safety re-check status."""
        records = ([self.engine.history.by_stamp(int(args[0]))] if args
                   else self.engine.history.active())
        lines = []
        for rec in records:
            if not rec.active or rec.is_edit:
                continue
            result = self.engine.check_safety(rec.stamp)
            status = "safe" if result.safe else \
                f"UNSAFE: {'; '.join(result.reasons)}"
            lines.append(f"  t{rec.stamp} {rec.name}: {status}")
        return "\n".join(lines) if lines else "(nothing applied)"

    def cmd_revers(self, args: List[str]) -> str:
        """``revers [stamp]`` — reversibility (post-pattern) status."""
        records = ([self.engine.history.by_stamp(int(args[0]))] if args
                   else self.engine.history.active())
        lines = []
        for rec in records:
            if not rec.active or rec.is_edit:
                continue
            rr = self.engine.check_reversibility(rec.stamp)
            if rr.reversible:
                lines.append(f"  t{rec.stamp} {rec.name}: "
                             "immediately reversible")
            else:
                v = rr.violations[0]
                who = f" (undo t{v.stamp} first)" if v.stamp else ""
                lines.append(f"  t{rec.stamp} {rec.name}: BLOCKED — "
                             f"{v.condition}{who}")
        return "\n".join(lines) if lines else "(nothing applied)"

    def cmd_view(self, args: List[str]) -> str:
        """``view`` — the two-level APDG/ADAG representation."""
        return TwoLevelRepresentation.of(self.engine).render()

    def cmd_cost(self, args: List[str]) -> str:
        """``cost`` — static cost/parallelism estimate."""
        est = estimate_cost(self.engine.program)
        return (f"ops={est.total_ops:.0f} parallel_fraction="
                f"{est.parallel_fraction:.2f} est_speedup={est.speedup:.2f}x "
                f"doall_loops={est.doall_loops}")

    def cmd_table2(self, args: List[str]) -> str:
        """``table2`` — generated Table 2 rows for the catalog."""
        lines = []
        for name in sorted(self.engine.registry):
            row = self.engine.registry[name].table2_row()
            lines.append(f"{row['transformation']}")
            lines.append(f"  pre:     {row['pre_pattern']}")
            lines.append(f"  actions: {row['primitive_actions']}")
            lines.append(f"  post:    {row['post_pattern']}")
        return "\n".join(lines)

    def cmd_table3(self, args: List[str]) -> str:
        """``table3`` — generated disabling-condition rows."""
        lines = []
        for name in sorted(self.engine.registry):
            row = self.engine.registry[name].table3_row()
            lines.append(f"{name.upper()}:")
            for c in row["safety"]:
                lines.append(f"  safety: {c}")
            for c in row["reversibility"]:
                lines.append(f"  reversibility: {c}")
        return "\n".join(lines)

    def cmd_table4(self, args: List[str]) -> str:
        """``table4`` — the interaction matrix."""
        return render_table4()

    def cmd_edit_del(self, args: List[str]) -> str:
        """``edit-del <sid>`` — user edit: delete a statement."""
        sid = int(args[0])
        report = self.engine.execute(EditCommand(kind="delete", sid=sid))
        self._pending_edits.append(report)
        return f"edit t{report.record.stamp}: deleted S{sid}"

    def cmd_batch(self, args: List[str]) -> str:
        """``batch <verb args> [; ...]`` — one transactional group."""
        cmd = parse_batch(args)
        result = self.engine.execute(cmd)
        lines = [sub.describe() for sub in cmd.commands]
        if result.error is not None:
            lines.append(f"batch stopped: {result.error}")
        return "\n".join(lines)

    def cmd_edit_unsafe(self, args: List[str]) -> str:
        """``edit-unsafe`` — remove transformations pending edits broke."""
        if not self._pending_edits:
            return "(no pending edits)"
        lines = []
        for report in self._pending_edits:
            stats = remove_unsafe(self.engine, report)
            lines.append(f"edit t{report.record.stamp}: "
                         f"checked {stats.safety_checks}, "
                         f"skipped {stats.region_skips}, "
                         f"removed {stats.removed or 'nothing'}")
        self._pending_edits.clear()
        return "\n".join(lines)

    def cmd_help(self, args: List[str]) -> str:
        """``help`` — the command reference."""
        return __doc__.split("Commands", 1)[1]


USAGE = """\
usage: python -m repro <program file>            interactive session
       python -m repro serve <root> [--shards N] [--port P] [--host H]
                                    [--metrics-port M] [--slow-ms S]
                                    [--deadline-ms D]
           line-protocol server: on stdio by default, on TCP with
           --port (0 picks a free port, printed as 'listening on ...');
           --shards N routes sessions across N worker processes by
           hashing the session name (see docs/SCALING.md);
           --metrics-port M serves /metrics /healthz /varz over HTTP
           (0 picks a free port, printed as 'metrics on ...');
           --slow-ms S sets the slow-request log threshold (0 records
           every request); --deadline-ms D flags and counts requests
           over their budget
       python -m repro collect <root> [--request R] [--check] [--json]
           merge the fleet's span streams (router-trace.jsonl + every
           session trace.jsonl) into per-request end-to-end traces;
           --check verifies the cross-shard round-trip (exit 1 on any
           mismatch)
       python -m repro session <root> <name> <verb> [args...]
           verbs: init <file> | apply <name> [k] | undo <stamp>
                  undo-lifo <stamp> | edit-del <sid> | log | show
                  batch <verb args ; verb args ...> | metrics
                  snapshot | reopen [--verify]
       python -m repro trace <root> <name> [--tail N] [--check]
           print a session's recorded spans (trace.jsonl); --check joins
           them against the journal (exit 1 on any mismatch)
       python -m repro audit <root> <name> [--tail N] [--check]
           print a session's audit log (audit.jsonl); --check joins it
           against the journal (exit 1 on any mismatch)
       python -m repro explain <root> <name> <stamp> [--json | --dot]
           why <stamp> is (un)safe / (ir)reversible now, plus its audit
           trail; --dot exports the provenance trees that mention it
       python -m repro prof <root> [--hz N] [--seconds S] [--out FILE]
           sample the engine hot path with the built-in sampling
           profiler: drives a scratch session under <root> through the
           apply/undo workload for S seconds (default 2) at N hz
           (default 100), prints the hottest frames, and with --out
           writes the collapsed-stack profile (flamegraph.pl input);
           profile a live server with '_ prof start|stop|dump' or
           'GET /pprof' instead"""


def _main_serve(argv: List[str]) -> int:
    """``repro serve <root> [--shards N] [--port P] [--host H] ...``.

    Stdio by default (the PR 2 behaviour, unchanged); ``--port`` starts
    the TCP front-end instead and prints ``listening on <host>:<port>``
    once it is accepting — with ``--port 0`` that line is how callers
    learn the bound port.  ``--shards N`` (either transport) routes
    sessions across N worker processes by name hash.  ``--metrics-port``
    starts the HTTP exposition sidecar (``/metrics`` ``/healthz``
    ``/varz``) next to either transport and prints ``metrics on
    <host>:<port>`` the same way; ``--slow-ms`` / ``--deadline-ms``
    tune the slow-request log threshold and the per-request deadline
    budget (see docs/OBSERVABILITY.md).
    """
    from repro.service.server import SessionServer, serve_stream
    from repro.service.session import SessionManager

    host, port, shards = "127.0.0.1", None, 0
    metrics_port: Optional[int] = None
    slow_ms: Optional[float] = 250.0
    deadline_ms: Optional[float] = None
    pos: List[str] = []
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg in ("--port", "--host", "--shards", "--metrics-port",
                   "--slow-ms", "--deadline-ms"):
            i += 1
            if i >= len(argv):
                print(USAGE)
                return 2
            if arg == "--port":
                port = int(argv[i])
            elif arg == "--host":
                host = argv[i]
            elif arg == "--metrics-port":
                metrics_port = int(argv[i])
            elif arg == "--slow-ms":
                slow_ms = float(argv[i])
            elif arg == "--deadline-ms":
                deadline_ms = float(argv[i])
            else:
                shards = int(argv[i])
        else:
            pos.append(arg)
        i += 1
    if len(pos) != 1 or shards < 0:
        print(USAGE)
        return 2

    obs_kwargs = {"slow_ms": slow_ms, "deadline_ms": deadline_ms}
    if shards:
        from repro.service.shard import ShardRouter
        front = ShardRouter(pos[0], shards, **obs_kwargs)
    else:
        front = SessionServer(SessionManager(pos[0]), **obs_kwargs)
    expo = None
    if metrics_port is not None:
        from repro.obs.expo import ExpoServer
        expo = ExpoServer(front, host=host, port=metrics_port).start()
        expo_host, expo_port = expo.address
        print(f"metrics on {expo_host}:{expo_port}", flush=True)
    if port is None:
        try:
            serve_stream(front, sys.stdin, sys.stdout)
        finally:
            if expo is not None:
                expo.close()
            front.close()
        return 0
    from repro.service.netserver import NetServer
    server = NetServer(front, host=host, port=port)
    bound_host, bound_port = server.address
    print(f"listening on {bound_host}:{bound_port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if expo is not None:
            expo.close()
        server.shutdown()
    return 0


def _main_collect(argv: List[str]) -> int:
    """``repro collect <root> [--request R] [--check] [--json]``.

    Reads every span stream under a service root (the router's
    ``router-trace.jsonl`` plus each session's ``trace.jsonl``) and
    prints the merged per-request traces — rendered trees by default,
    JSON documents with ``--json``.  ``--request R`` narrows to one
    request id; ``--check`` runs the cross-shard round-trip
    (:func:`repro.obs.check.fleet_roundtrip`) and exits 1 on mismatch.
    """
    import json

    from repro.obs.check import fleet_roundtrip
    from repro.obs.collector import collect_requests

    want: Optional[str] = None
    check = as_json = False
    pos: List[str] = []
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--request":
            i += 1
            if i >= len(argv):
                print(USAGE)
                return 2
            want = argv[i]
        elif arg == "--check":
            check = True
        elif arg == "--json":
            as_json = True
        else:
            pos.append(arg)
        i += 1
    if len(pos) != 1:
        print(USAGE)
        return 2
    traces = collect_requests(pos[0])
    if want is not None:
        traces = {rid: t for rid, t in traces.items() if rid == want}
        if not traces:
            print(f"error: collect: no spans for request {want!r}")
            return 1
    try:
        for trace in traces.values():
            if as_json:
                print(json.dumps(trace.to_doc(), sort_keys=True))
            else:
                print(trace.render())
        sys.stdout.flush()
    except BrokenPipeError:
        # downstream closed early (| head, a pager) — swallow the
        # pipe error and suppress the interpreter's flush-at-exit one
        import os
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    if check:
        report = fleet_roundtrip(pos[0])
        print(report.describe())
        return 0 if report.ok else 1
    return 0


def _main_session(argv: List[str]) -> int:
    """``repro session <root> <name> <verb> [args...]`` — one-shot command."""
    from repro.service.server import SessionServer
    from repro.service.session import DurableSession, SessionManager

    if len(argv) < 3:
        print(USAGE)
        return 2
    root, name, verb, args = argv[0], argv[1], argv[2], argv[3:]
    import os

    if verb == "reopen":
        # explicit crash-recovery entry point, bypassing the manager so
        # --verify can request the from-scratch replay check
        session = DurableSession.open(os.path.join(root, name),
                                      verify="--verify" in args)
        r = session.recovery
        print(f"reopened {name}: seq {r.seq}, replayed {r.replayed} "
              f"command(s) from "
              f"{'snapshot ' + str(r.snapshot_seq) if r.snapshot_seq else 'genesis'}"
              + (f", dropped {r.torn_bytes} torn byte(s)" if r.torn_bytes
                 else "")
              + (", verified" if r.verified else ""))
        session.snapshot()
        session.close()
        return 0
    if verb == "show":
        verb, args = "source", ["labels"]
    manager = SessionManager(root)
    server = SessionServer(manager)
    out = server.handle_line(" ".join([name, verb] + args))
    manager.close_all()
    if out:
        print(out)
    return 1 if out.startswith("error:") else 0


def _main_trace(argv: List[str]) -> int:
    """``repro trace <root> <name> [--tail N] [--check]`` — span stream.

    Reads the session's on-disk ``trace.jsonl`` (no live session or
    lock needed — the stream is append-only), prints the spans as JSON
    lines, and with ``--check`` joins them against the journal via
    :func:`repro.obs.check.trace_roundtrip`.
    """
    import json
    import os

    from repro.obs.check import trace_path, trace_roundtrip
    from repro.obs.trace import read_trace

    tail: Optional[int] = None
    check = False
    pos: List[str] = []
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--tail":
            i += 1
            if i >= len(argv):
                print(USAGE)
                return 2
            tail = int(argv[i])
        elif arg == "--check":
            check = True
        else:
            pos.append(arg)
        i += 1
    if len(pos) != 2:
        print(USAGE)
        return 2
    dirpath = os.path.join(pos[0], pos[1])
    spans = read_trace(trace_path(dirpath))
    if tail is not None and tail >= 0:
        spans = spans[len(spans) - min(tail, len(spans)):]
    for doc in spans:
        print(json.dumps(doc, sort_keys=True))
    if check:
        report = trace_roundtrip(dirpath)
        print(report.describe())
        return 0 if report.ok else 1
    return 0


def _main_audit(argv: List[str]) -> int:
    """``repro audit <root> <name> [--tail N] [--check]`` — audit log.

    Like :func:`_main_trace`, reads the on-disk ``audit.jsonl`` without
    opening the session; ``--check`` joins it against the journal via
    :func:`repro.obs.check.audit_roundtrip` and exits 1 on any mismatch.
    """
    import json
    import os

    from repro.obs.check import audit_roundtrip
    from repro.obs.provenance import audit_path, read_audit

    tail: Optional[int] = None
    check = False
    pos: List[str] = []
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--tail":
            i += 1
            if i >= len(argv):
                print(USAGE)
                return 2
            tail = int(argv[i])
        elif arg == "--check":
            check = True
        else:
            pos.append(arg)
        i += 1
    if len(pos) != 2:
        print(USAGE)
        return 2
    dirpath = os.path.join(pos[0], pos[1])
    entries = read_audit(audit_path(dirpath))
    if tail is not None and tail >= 0:
        entries = entries[len(entries) - min(tail, len(entries)):]
    for entry in entries:
        print(json.dumps(entry, sort_keys=True))
    if check:
        report = audit_roundtrip(dirpath)
        print(report.describe())
        return 0 if report.ok else 1
    return 0


def _main_explain(argv: List[str]) -> int:
    """``repro explain <root> <name> <stamp> [--json | --dot]``.

    One-shot wrapper over the server's ``explain`` verb so the CLI and
    the line protocol share one code path (live verdicts need the
    recovered engine, so the session is opened like any other one-shot
    command).
    """
    from repro.service.server import SessionServer
    from repro.service.session import SessionManager

    mode = ""
    pos: List[str] = []
    for arg in argv:
        if arg == "--json":
            mode = "json"
        elif arg == "--dot":
            mode = "dot"
        else:
            pos.append(arg)
    if len(pos) != 3:
        print(USAGE)
        return 2
    root, name, stamp = pos
    manager = SessionManager(root)
    server = SessionServer(manager)
    out = server.handle_line(" ".join([name, "explain", stamp, mode]))
    manager.close_all()
    if out:
        print(out)
    return 1 if out.startswith("error:") else 0


def _main_prof(argv: List[str]) -> int:
    """``repro prof <root> [--hz N] [--seconds S] [--out FILE]``.

    The offline profiling entry point: creates a *scratch* durable
    session in a temporary directory under ``<root>`` (removed
    afterwards — never touches existing sessions), drives the
    deterministic apply/undo hot-path workload for ``--seconds`` of
    wall clock under the sampling profiler
    (:class:`repro.obs.profiler.Profiler`), and prints the hottest
    frames by self samples.  ``--out`` additionally writes the
    collapsed-stack profile — feed it straight to ``flamegraph.pl``.
    Live servers are profiled in place instead: ``_ prof
    start|stop|dump`` over the line protocol, or ``GET
    /pprof?seconds=N`` on the metrics sidecar.
    """
    import os
    import shutil
    import tempfile
    import time

    from repro.lang.printer import format_program
    from repro.obs.profiler import Profiler
    from repro.service.session import DurableSession
    from repro.workloads.generator import GeneratorConfig, generate_program
    from repro.workloads.scenarios import apply_greedy

    hz, seconds = 100.0, 2.0
    out_path: Optional[str] = None
    pos: List[str] = []
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg in ("--hz", "--seconds", "--out"):
            i += 1
            if i >= len(argv):
                print(USAGE)
                return 2
            if arg == "--hz":
                hz = float(argv[i])
            elif arg == "--seconds":
                seconds = float(argv[i])
            else:
                out_path = argv[i]
        else:
            pos.append(arg)
        i += 1
    if len(pos) != 1 or hz <= 0 or seconds <= 0:
        print(USAGE)
        return 2
    os.makedirs(pos[0], exist_ok=True)
    scratch = tempfile.mkdtemp(prefix="prof-", dir=pos[0])
    profiler = Profiler(hz=hz)
    source = format_program(generate_program(23, GeneratorConfig(blocks=24)))
    commands = 0
    try:
        session = DurableSession.create(
            os.path.join(scratch, "session"), source,
            snapshot_every=16, snapshot_full_every=4)
        profiler.start()
        deadline = time.perf_counter() + seconds
        while time.perf_counter() < deadline:
            # apply a couple, then undo them — undo restores the
            # opportunities, so the mix sustains for the whole window
            # and exercises every phase: parse (once), analyze, check,
            # mutate, journal append, fsync, periodic delta snapshots
            stamps = apply_greedy(session.engine, 2, seed=23 + commands)
            commands += len(stamps)
            for stamp in reversed(stamps):
                if session.engine.history.by_stamp(stamp).active:
                    session.undo(stamp)
                    commands += 1
            if not stamps:
                break
        profiler.stop()
        session.close()
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    snap = profiler.snapshot()
    print(f"profiled {commands} command(s) at {profiler.hz:g} hz: "
          f"{snap['samples']} sample(s), {snap['dropped']} dropped, "
          f"{snap['wall_s']:.2f}s wall")
    rows = profiler.table()[:20]
    if rows:
        width = max(len(r["frame"]) for r in rows)
        print(f"{'frame':<{width}}  {'self':>6} {'cum':>6} "
              f"{'self_s':>8} {'cum_s':>8}")
        for r in rows:
            print(f"{r['frame']:<{width}}  {r['self']:>6} {r['cum']:>6} "
                  f"{r['self_s']:>8.3f} {r['cum_s']:>8.3f}")
    if out_path is not None:
        folded = profiler.folded()
        with open(out_path, "w", encoding="utf-8") as fh:
            fh.write(folded + ("\n" if folded else ""))
        print(f"collapsed stacks written to {out_path}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro``."""
    argv = argv if argv is not None else sys.argv[1:]
    if not argv:
        print(USAGE)
        return 2
    if argv[0] == "serve":
        return _main_serve(argv[1:])
    if argv[0] == "collect":
        return _main_collect(argv[1:])
    if argv[0] == "session":
        return _main_session(argv[1:])
    if argv[0] == "trace":
        return _main_trace(argv[1:])
    if argv[0] == "audit":
        return _main_audit(argv[1:])
    if argv[0] == "explain":
        return _main_explain(argv[1:])
    if argv[0] == "prof":
        return _main_prof(argv[1:])
    with open(argv[0]) as fh:
        source = fh.read()
    session = CliSession(source)
    print("repro interactive session — 'help' for commands")
    print(session.cmd_show(["labels"]))
    while True:
        try:
            line = input("repro> ")
        except EOFError:
            break
        if line.strip() in ("quit", "exit"):
            break
        out = session.execute(line)
        if out:
            print(out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
