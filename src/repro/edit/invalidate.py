"""Unsafe-transformation detection and removal after edits.

The incremental path (the paper's, via [13]):

1. the edit's change events give the affected region;
2. only active transformations whose footprint meets the region (plus
   dependence propagation) are safety-rechecked;
3. the unsafe ones are removed with the independent-order undo engine —
   everything else stays in the code.

The baseline (:func:`redo_all_baseline`) models the non-incremental
world: throw all transformations away and re-derive them from scratch,
counting the re-analysis work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.engine import TransformationEngine
from repro.core.events import Event
from repro.core.regions import (
    affected_names,
    affected_regions,
    record_in_region,
    record_names,
)
from repro.core.undo import UndoError
from repro.edit.edits import EditReport


@dataclass
class InvalidationStats:
    """Work accounting for the edit-invalidation comparison (E4)."""

    candidates: int = 0
    safety_checks: int = 0
    region_skips: int = 0
    unsafe: List[int] = field(default_factory=list)
    removed: List[int] = field(default_factory=list)
    #: stamps that could not be removed automatically (edit destroyed
    #: their post pattern too).
    unrecoverable: List[int] = field(default_factory=list)


def find_unsafe(engine: TransformationEngine, report: EditReport,
                *, use_regional: bool = True) -> InvalidationStats:
    """Identify transformations whose safety the edit destroyed."""
    stats = InvalidationStats()
    events: List[Event] = []
    for act in report.record.actions:
        events = engine.events.all()
        break
    # events from this edit only
    edit_ids = {a.action_id for a in report.record.actions}
    events = [e for e in engine.events.all() if e.action_id in edit_ids]
    region: Optional[Set[int]] = None
    names = None
    if use_regional:
        region = affected_regions(engine.program, engine.cache, events)
        names = affected_names(engine.program, events) | \
            record_names(engine.program, report.record)
    for rec in engine.history.active():
        stats.candidates += 1
        if region is not None and not record_in_region(
                engine.program, engine.cache, rec, region, names):
            stats.region_skips += 1
            continue
        stats.safety_checks += 1
        if not engine.check_safety(rec.stamp).safe:
            stats.unsafe.append(rec.stamp)
    report.unsafe = list(stats.unsafe)
    return stats


def remove_unsafe(engine: TransformationEngine, report: EditReport,
                  stats: Optional[InvalidationStats] = None,
                  *, use_regional: bool = True) -> InvalidationStats:
    """Find and undo every transformation the edit made unsafe."""
    if stats is None:
        stats = find_unsafe(engine, report, use_regional=use_regional)
    for stamp in stats.unsafe:
        if not engine.history.by_stamp(stamp).active:
            stats.removed.append(stamp)  # removed as part of a cascade
            continue
        try:
            undo_rep = engine.undo(stamp)
        except UndoError:
            stats.unrecoverable.append(stamp)
            continue
        stats.removed.extend(undo_rep.undone)
    report.removed = list(stats.removed)
    return stats


@dataclass
class RedoAllStats:
    """Work accounting of the redo-everything baseline."""

    transformations_discarded: int = 0
    reanalysis_runs: int = 0
    safety_checks_equiv: int = 0


def redo_all_baseline(engine: TransformationEngine) -> RedoAllStats:
    """Model the non-incremental response to an edit.

    Counts (without mutating the program) the work of discarding every
    active transformation and re-deriving the optimization state: one
    full re-analysis plus a fresh opportunity scan per transformation
    kind — the redundant analysis the paper's approach avoids.
    """
    stats = RedoAllStats()
    active = engine.history.active()
    stats.transformations_discarded = len(active)
    engine.cache.invalidate()
    engine.cache.dataflow()
    engine.cache.dependences()
    stats.reanalysis_runs = 1
    for name in engine.registry:
        stats.safety_checks_equiv += len(engine.find(name))
    stats.safety_checks_equiv += stats.transformations_discarded
    return stats
