"""User edits and edit-driven transformation invalidation.

"When a program is modified by edits, the safety conditions of a
transformation can be altered such that the transformation is no longer
applicable ... This kind of transformation is defined to be unsafe and
needs to be removed.  However, all other transformations may be
unaffected and should remain in the code." (§1)

:class:`EditSession` applies user edits through the same primitive-action
machinery (so they are stamped and annotated), finds exactly the
transformations whose safety each edit destroyed, and removes them with
the independent-order undo engine — the incremental alternative to
re-deriving every optimization from scratch (Pollock & Soffa [13]).
"""

from repro.edit.edits import EditSession, EditReport
from repro.edit.invalidate import find_unsafe, remove_unsafe, redo_all_baseline

__all__ = [
    "EditSession",
    "EditReport",
    "find_unsafe",
    "remove_unsafe",
    "redo_all_baseline",
]
