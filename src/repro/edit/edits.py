"""User edit operations, recorded through the primitive-action machinery.

Edits are first-class history entries (``name="edit"``): they consume an
order stamp and leave annotations exactly like transformations, so the
reversibility checks can attribute a broken post pattern to an edit —
in which case the engine reports the transformation as unrecoverable by
automatic undo (the user changed the code out from under it).

:class:`EditSession` is a thin convenience layer over the command
pipeline: each method builds an :class:`repro.core.commands.EditCommand`
and runs it through ``engine.execute``, the same transactional path
applies and undos take.  That routing is load-bearing for durability —
an edit made through *any* entry point (including a bare
``EditSession(engine)`` someone constructs ad hoc) notifies the
engine's ``command_observers``, so a journaled engine records it with
its order stamp, success or failure alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.commands import EditCommand
from repro.core.engine import TransformationEngine
from repro.core.history import TransformationRecord
from repro.core.locations import Location
from repro.lang.ast_nodes import Expr, ExprPath, Stmt


@dataclass
class EditReport:
    """One applied edit plus its fallout."""

    record: TransformationRecord
    #: stamps of transformations the edit made unsafe (filled by
    #: :func:`repro.edit.invalidate.find_unsafe` when requested).
    unsafe: List[int] = field(default_factory=list)
    #: stamps actually removed.
    removed: List[int] = field(default_factory=list)


class EditSession:
    """Applies user edits to an engine's program."""

    def __init__(self, engine: TransformationEngine):
        self.engine = engine

    def add_stmt(self, stmt: Stmt, loc: Location) -> EditReport:
        """Insert a new statement at ``loc``."""
        return self.engine.execute(EditCommand(kind="add", stmt=stmt,
                                               loc=loc))

    def delete_stmt(self, sid: int) -> EditReport:
        """Remove statement ``sid``."""
        return self.engine.execute(EditCommand(kind="delete", sid=sid))

    def move_stmt(self, sid: int, loc: Location) -> EditReport:
        """Relocate statement ``sid`` to ``loc``."""
        return self.engine.execute(EditCommand(kind="move", sid=sid,
                                               loc=loc))

    def modify_expr(self, sid: int, path: ExprPath, new: Expr) -> EditReport:
        """Replace the expression at ``(sid, path)`` with ``new``."""
        return self.engine.execute(EditCommand(kind="modify", sid=sid,
                                               path=path, expr=new))
