"""User edit operations, recorded through the primitive-action machinery.

Edits are first-class history entries (``name="edit"``): they consume an
order stamp and leave annotations exactly like transformations, so the
reversibility checks can attribute a broken post pattern to an edit —
in which case the engine reports the transformation as unrecoverable by
automatic undo (the user changed the code out from under it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.engine import TransformationEngine
from repro.core.history import TransformationRecord
from repro.core.locations import Location
from repro.lang.ast_nodes import Expr, ExprPath, Program, Stmt


@dataclass
class EditReport:
    """One applied edit plus its fallout."""

    record: TransformationRecord
    #: stamps of transformations the edit made unsafe (filled by
    #: :func:`repro.edit.invalidate.find_unsafe` when requested).
    unsafe: List[int] = field(default_factory=list)
    #: stamps actually removed.
    removed: List[int] = field(default_factory=list)


class EditSession:
    """Applies user edits to an engine's program."""

    def __init__(self, engine: TransformationEngine):
        self.engine = engine

    def _record(self, **params) -> TransformationRecord:
        return self.engine.history.new_record("edit", **params)

    def _run(self, rec: TransformationRecord, primitive) -> EditReport:
        """Run one applier primitive for ``rec``, sound on failure.

        The record is registered (its order stamp consumed) before the
        applier validates, so a failed primitive must deactivate it —
        mirroring ``TransformationEngine.apply``'s failure path — or the
        history would keep an active record with no actions.  The same
        code runs during journal replay, so a re-failed edit leaves the
        identical deactivated record.
        """
        try:
            act = primitive()
        except Exception:
            self.engine.history.deactivate(rec.stamp)
            raise
        rec.actions.append(act)
        return EditReport(record=rec)

    def add_stmt(self, stmt: Stmt, loc: Location) -> EditReport:
        """Insert a new statement at ``loc``."""
        rec = self._record(kind="add")
        return self._run(
            rec, lambda: self.engine.applier.add(rec.stamp, stmt, loc))

    def delete_stmt(self, sid: int) -> EditReport:
        """Remove statement ``sid``."""
        rec = self._record(kind="delete", sid=sid)
        return self._run(
            rec, lambda: self.engine.applier.delete(rec.stamp, sid))

    def move_stmt(self, sid: int, loc: Location) -> EditReport:
        """Relocate statement ``sid`` to ``loc``."""
        rec = self._record(kind="move", sid=sid)
        return self._run(
            rec, lambda: self.engine.applier.move(rec.stamp, sid, loc))

    def modify_expr(self, sid: int, path: ExprPath, new: Expr) -> EditReport:
        """Replace the expression at ``(sid, path)`` with ``new``."""
        rec = self._record(kind="modify", sid=sid)
        return self._run(
            rec, lambda: self.engine.applier.modify(rec.stamp, sid, path, new))
