"""repro — Undoing Code Transformations in an Independent Order.

A complete reimplementation of Dow, Soffa & Chang (ICPP 1994): an
interactive transformation engine for a structured loop language in
which any applied optimization or parallelizing transformation can be
undone in an order *independent* of the application order.

Quick start::

    from repro import TransformationEngine, parse_program

    engine = TransformationEngine(parse_program('''
    D = E + F
    do i = 1, 100
      R(i) = E + F
    enddo
    write R(7)
    '''))
    cse = engine.apply(engine.find("cse")[0])   # R(i) = D
    engine.undo(cse.stamp)                      # back to E + F

Package layout:

* :mod:`repro.lang` — the loop language (parser, printer, interpreter).
* :mod:`repro.analysis` — CFG, dataflow, DAG, dependences, PDG, regions.
* :mod:`repro.core` — primitive actions, history, undo engines (the
  paper's contribution).
* :mod:`repro.transforms` — the ten transformations of Table 4.
* :mod:`repro.repr2` — the two-level ADAG/APDG representation (Figure 1).
* :mod:`repro.edit` — user edits and unsafe-transformation removal.
* :mod:`repro.model` — the benefit model motivating undo decisions.
* :mod:`repro.workloads` — kernels and the seeded program generator.
"""

from repro.core.engine import ApplyError, TransformationEngine
from repro.core.undo import UndoError, UndoReport, UndoStrategy
from repro.lang.interp import run_program, traces_equivalent
from repro.lang.parser import parse_program
from repro.lang.printer import format_program
from repro.transforms.base import Opportunity

__version__ = "1.0.0"

__all__ = [
    "ApplyError",
    "TransformationEngine",
    "UndoError",
    "UndoReport",
    "UndoStrategy",
    "run_program",
    "traces_equivalent",
    "parse_program",
    "format_program",
    "Opportunity",
    "__version__",
]
