"""``python -m repro`` — the interactive transformation session.

The ``__main__`` guard is load-bearing: the sharded service spawns
worker processes with the ``spawn`` start method, which re-imports the
parent's main module in each child — an unguarded ``main()`` here would
re-run the CLI inside every shard worker.
"""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
