"""``python -m repro`` — the interactive transformation session."""

from repro.cli import main

raise SystemExit(main())
