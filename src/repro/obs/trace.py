"""Tracing spans and the in-memory flight recorder.

The paper's undo machinery works because every transformation leaves a
causally-ordered execution annotation behind (Figure 2); this module
applies the same idea to the *runtime itself*.  A :class:`Tracer`
produces nested :class:`Span` records — one per executed command, with
children for journal appends, fsyncs, snapshot cuts, and recovery
replay — so "where did the time go when this command ran?" has a
recorded answer instead of a guess.

Design points:

* **Monotonic timing** — spans carry a ``perf_counter`` start and a
  duration; they are never compared across processes.
* **Nesting without plumbing** — the tracer keeps a thread-local stack
  of open spans; a span opened while another is open becomes its child
  (``parent`` id), so ``engine.execute`` recursing into batch
  sub-commands yields the correct tree with no explicit parent passing.
* **Flight recorder** — completed spans land in a fixed-capacity ring
  buffer (:class:`FlightRecorder`); when it fills, the oldest spans are
  dropped, never the newest — exactly what is wanted when something
  just went wrong.
* **Sinks** — callables invoked with each completed span; the durable
  session uses one to stream spans to ``trace.jsonl``.  A sink that
  raises is counted and dropped for that span, never propagated:
  observability must not break the host.
* **A zero-cost off switch** — ``Tracer.disabled`` is a shared tracer
  whose :meth:`Tracer.span` returns one preallocated no-op context
  manager: no Span object, no clock read, no stack touch.  Engines
  default to it, so untraced sessions pay one attribute load and one
  ``if`` per command (measured <5% end-to-end in
  ``benchmarks/bench_e7_observability.py`` even with tracing ON).
* **Request context** — a thread-local *fleet* identity for the request
  currently being served.  The edge (the stdio loop, the TCP handler)
  mints one request id per request line and enters
  :func:`request_context`; every span any tracer on that thread
  produces while the context is active is stamped with a ``request``
  tag.  The sharded router forwards the context over the worker pipe,
  so one TCP request leaves causally joinable spans in the router's
  trace *and* in the worker's per-session ``trace.jsonl`` — the join
  key :mod:`repro.obs.collector` merges fleet traces on.  The context
  dict is also the per-request scratchpad for latency forensics:
  :func:`annotate_request` accumulates breakdown fields (lock wait,
  analysis timers, journal fsyncs) that the slow-request log captures.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Dict, IO, Iterator, List, Optional, Tuple

__all__ = ["Span", "FlightRecorder", "Tracer", "read_trace",
           "new_request_id", "current_request", "request_context",
           "annotate_request", "thread_activity"]


# -- request context ----------------------------------------------------------
#
# One thread serves one request at a time (the stdio loop, a TCP
# connection thread, a shard worker's pipe loop), so a thread-local is
# the whole mechanism: no tracer plumbing, no per-span arguments.

_REQUEST = threading.local()

# -- thread activity ----------------------------------------------------------
#
# The sampling profiler (:mod:`repro.obs.profiler`) reads *other*
# threads' frames through ``sys._current_frames()``, where thread-locals
# are invisible — so span enter/exit and :func:`request_context` also
# maintain this process-wide table: thread ident -> open span names /
# active request id.  Plain dict and list mutations, atomic under the
# GIL, so the hot path takes no lock; the profiler snapshots via
# ``list()`` copies and tolerates the races that remain (a sample
# attributed to the span that just closed is off by one tick at most).

_SPAN_ACTIVITY: Dict[int, List[str]] = {}
_REQUEST_ACTIVITY: Dict[int, str] = {}


def thread_activity() -> Dict[int, Tuple[Optional[str], Optional[str]]]:
    """Snapshot of ``thread ident -> (innermost span name, request id)``.

    The profiler's attribution source: called once per sampling tick,
    from the sampler thread, to tag each thread's captured stack with
    the span (= engine phase) and fleet request it was serving.  Threads
    with neither an open span nor a request context are absent.
    """
    out: Dict[int, Tuple[Optional[str], Optional[str]]] = {}
    for ident, names in list(_SPAN_ACTIVITY.items()):
        if names:
            out[ident] = (names[-1], None)
    for ident, request in list(_REQUEST_ACTIVITY.items()):
        span = out.get(ident, (None, None))[0]
        out[ident] = (span, request)
    return out


def new_request_id() -> str:
    """A fresh fleet-unique request id (``r-`` + 12 hex chars).

    Random rather than sequential: ids minted by different edge threads
    and different front-end processes must never collide, because the
    collector joins multi-process traces on them.
    """
    return "r-" + os.urandom(6).hex()


def current_request() -> Optional[Dict[str, Any]]:
    """The active request context of this thread, or ``None``."""
    return getattr(_REQUEST, "ctx", None)


@contextmanager
def request_context(
        ctx: Optional[Dict[str, Any]] = None) -> Iterator[Dict[str, Any]]:
    """Enter a request context for the duration of the block.

    ``ctx`` must carry at least ``{"request": <id>}``; ``None`` mints a
    fresh id.  Contexts nest by *replacement* (the previous one is
    restored on exit): a worker entering the context forwarded by the
    router replaces any ambient one, so spans are always stamped with
    the id the edge minted, exactly once.
    """
    if ctx is None:
        ctx = {"request": new_request_id()}
    prev = getattr(_REQUEST, "ctx", None)
    _REQUEST.ctx = ctx
    ident = threading.get_ident()
    rid = ctx.get("request")
    if rid is not None:
        _REQUEST_ACTIVITY[ident] = rid
    try:
        yield ctx
    finally:
        _REQUEST.ctx = prev
        prev_rid = prev.get("request") if prev else None
        if prev_rid is not None:
            _REQUEST_ACTIVITY[ident] = prev_rid
        else:
            _REQUEST_ACTIVITY.pop(ident, None)


def annotate_request(**fields: Any) -> None:
    """Accumulate breakdown fields onto the active request context.

    Numeric fields add (a request may wait on several locks and fsync
    more than once); everything else overwrites.  A no-op outside a
    request context, so instrumented seams call it unconditionally.
    """
    ctx = current_request()
    if ctx is None:
        return
    breakdown = ctx.setdefault("breakdown", {})
    for key, value in fields.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            breakdown[key] = breakdown.get(key, 0) + value
        else:
            breakdown[key] = value


class Span:
    """One timed operation: a name, tags, and a place in the span tree.

    Used as a context manager (``with tracer.span("command", op=...) as
    sp``); entering stamps the monotonic start and pushes the span onto
    the tracer's thread-local stack, exiting records the duration and
    hands the completed span to the flight recorder and sinks.
    """

    __slots__ = ("tracer", "name", "span_id", "parent_id", "start",
                 "duration", "status", "tags")

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 tags: Dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id: Optional[int] = None
        self.start = 0.0
        self.duration = 0.0
        #: "ok", or "failed" (tagged by the instrumented code), or
        #: "error" (an exception escaped the body untagged).
        self.status = "ok"
        self.tags = tags

    def tag(self, **tags: Any) -> None:
        """Attach/overwrite tags; ``status=`` updates the status field."""
        status = tags.pop("status", None)
        if status is not None:
            self.status = status
        self.tags.update(tags)

    def __enter__(self) -> "Span":
        stack = self.tracer._open_stack()
        if stack:
            self.parent_id = stack[-1].span_id
        stack.append(self)
        _SPAN_ACTIVITY.setdefault(threading.get_ident(), []).append(
            self.name)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self.start
        stack = self.tracer._open_stack()
        dropped = [self]
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # unbalanced exit: drop through to this span
            idx = stack.index(self)
            dropped = stack[idx:]
            del stack[idx:]
        ident = threading.get_ident()
        names = _SPAN_ACTIVITY.get(ident)
        if names:
            # an unbalanced exit drops every span above this one too —
            # their activity entries must not outlive them
            for span in dropped:
                for i in range(len(names) - 1, -1, -1):
                    if names[i] == span.name:
                        del names[i]
                        break
            if not names:
                _SPAN_ACTIVITY.pop(ident, None)
        if exc_type is not None and self.status == "ok":
            self.status = "error"
        self.tracer._complete(self)
        return False

    def to_doc(self) -> Dict[str, Any]:
        """JSON-safe dict (the ``trace.jsonl`` line format)."""
        return {"name": self.name, "id": self.span_id,
                "parent": self.parent_id, "start": self.start,
                "dur": self.duration, "status": self.status,
                "tags": dict(self.tags)}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"parent={self.parent_id}, status={self.status!r}, "
                f"tags={self.tags!r})")


class _NoopSpan:
    """The shared do-nothing span handed out by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def tag(self, **tags: Any) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class FlightRecorder:
    """Fixed-capacity ring buffer of the most recent completed spans."""

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._spans: "deque[Span]" = deque(maxlen=capacity)
        #: completed spans ever seen (``completed - len(spans())`` were
        #: dropped off the old end of the ring).
        self.completed = 0
        #: optional :class:`repro.obs.metrics.Counter` incremented once
        #: per evicted span — under load the ring wraps *silently*
        #: otherwise, and "how much trace did we lose" is exactly the
        #: question asked after an incident.  Wired by the engine to
        #: ``repro_trace_dropped_total``; any object with ``inc()`` works.
        self.drop_counter: Optional[Any] = None

    def add(self, span: Span) -> None:
        """Record one completed span (oldest evicted when full)."""
        if len(self._spans) == self.capacity and \
                self.drop_counter is not None:
            self.drop_counter.inc()
        self._spans.append(span)
        self.completed += 1

    @property
    def dropped(self) -> int:
        """Spans evicted off the old end of the ring so far."""
        return self.completed - len(self._spans)

    def spans(self, tail: Optional[int] = None) -> List[Span]:
        """The retained spans, oldest first (optionally only the tail)."""
        out = list(self._spans)
        if tail is not None and tail >= 0:
            out = out[len(out) - min(tail, len(out)):]
        return out

    def clear(self) -> None:
        """Forget every retained span (the counters keep accumulating)."""
        self._spans.clear()

    def export_jsonl(self, fh: IO[str], tail: Optional[int] = None) -> int:
        """Write the retained spans as JSON lines; returns lines written."""
        n = 0
        for span in self.spans(tail):
            fh.write(json.dumps(span.to_doc(), sort_keys=True) + "\n")
            n += 1
        return n


class Tracer:
    """Produces spans, remembers the recent ones, streams them to sinks.

    ``common_tags`` (e.g. ``session="alpha"``) are stamped onto every
    span the tracer produces — the durable session uses this to carry
    the session name.  ``Tracer.disabled`` is the documented zero-cost
    instance: its :meth:`span` short-circuits to a shared no-op context
    manager and :meth:`annotate` is a no-op.
    """

    #: the shared zero-cost tracer (assigned after the class body).
    disabled: "Tracer"

    def __init__(self, capacity: int = 4096, *, enabled: bool = True,
                 **common_tags: Any):
        self.enabled = enabled
        self.recorder = FlightRecorder(capacity)
        #: callables invoked with every completed span (isolated).
        self.sinks: List[Callable[[Span], None]] = []
        self.sink_errors = 0
        self.common = dict(common_tags)
        self._ids = itertools.count(1)
        self._local = threading.local()

    def _open_stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- producing spans -----------------------------------------------------

    def span(self, name: str, **tags: Any):
        """A new span context (or the shared no-op when disabled).

        A span produced while a :func:`request_context` is active is
        stamped with its ``request`` tag — the fleet-wide join key —
        unless the call site already supplied one.
        """
        if not self.enabled:
            return _NOOP_SPAN
        merged = dict(self.common)
        merged.update(tags)
        ctx = current_request()
        if ctx is not None and "request" not in merged:
            merged["request"] = ctx["request"]
        return Span(self, name, next(self._ids), merged)

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        if not self.enabled:
            return None
        stack = self._open_stack()
        return stack[-1] if stack else None

    def annotate(self, **tags: Any) -> None:
        """Tag the innermost open span (no-op when disabled or idle).

        This is how code *downstream* of a span reaches back to it: the
        durable session's journal observer runs inside the command span
        and annotates it with the journal sequence number it was
        committed under — the key the flight-recorder round-trip check
        joins on.
        """
        span = self.current()
        if span is not None:
            span.tag(**tags)

    # -- completion ----------------------------------------------------------

    def _complete(self, span: Span) -> None:
        self.recorder.add(span)
        for sink in self.sinks:
            try:
                sink(span)
            except Exception:
                # a broken sink must never take the traced code down
                self.sink_errors += 1


Tracer.disabled = Tracer(capacity=1, enabled=False)


def read_trace(path: str) -> List[Dict[str, Any]]:
    """Load a ``trace.jsonl`` file written by a session's span sink.

    Unparseable lines (a torn final write under kill -9) are skipped —
    the trace is observability, not a source of truth, so a damaged
    tail merely loses those spans.
    """
    if not os.path.exists(path):
        return []
    out: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            try:
                doc = json.loads(line)
            except ValueError:
                continue
            if isinstance(doc, dict) and "name" in doc:
                out.append(doc)
    return out
