"""Journal ↔ flight-recorder round-trip verification.

A durable session journals every committed command AND (via its span
sink) streams every completed span to ``trace.jsonl`` in the session
directory.  The two records describe the same execution, so they must
join exactly: every journal record has **exactly one** top-level command
span annotated with its sequence number, and where the command carries
an order stamp (apply/undo/edit — a batch does not), the span's stamp
tag matches it.

:func:`trace_roundtrip` performs that join for one session directory;
the CLI surfaces it as ``python -m repro trace ROOT NAME --check``.

Two scoping notes, both deliberate:

* the journal is truncated through the oldest retained snapshot, so the
  check covers the current journal *tail* — the spans for truncated
  records are still in ``trace.jsonl`` but no longer have a journal
  side to join against;
* recovery replay re-executes journaled commands, but those spans are
  children of the ``recover`` span and are never annotated with a new
  sequence number, so a reopened session does not double-count.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.trace import read_trace

#: spans streamed by a session's sink land here (next to the journal).
TRACE_FILE = "trace.jsonl"


def trace_path(dirpath: str) -> str:
    """The span-stream file of one session directory."""
    return os.path.join(dirpath, TRACE_FILE)


@dataclass
class RoundtripReport:
    """Outcome of joining one session's journal against its trace."""

    #: journal records examined (the current journal tail).
    checked: int = 0
    #: spans carrying a ``seq`` annotation (committed command spans).
    command_spans: int = 0
    #: human-readable mismatches; empty means the round-trip holds.
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def describe(self) -> str:
        """One line per problem, or the all-clear summary."""
        if self.ok:
            return (f"ok: {self.checked} journaled command(s) round-trip "
                    f"({self.command_spans} command span(s))")
        return "\n".join(self.problems)


def _cmd_stamp(cmd: Dict[str, Any]) -> Optional[int]:
    """The order stamp a journaled command carries (None for batches)."""
    stamp = cmd.get("stamp")
    return stamp if isinstance(stamp, int) else None


def trace_roundtrip(dirpath: str) -> RoundtripReport:
    """Join a session's journal tail against its recorded spans."""
    # imported here, not at module top: obs must stay importable without
    # the service layer (the engine depends on obs, not vice versa)
    from repro.service.journal import scan_journal
    from repro.service.recovery import JOURNAL_FILE

    records, _bytes, _torn = scan_journal(os.path.join(dirpath, JOURNAL_FILE))
    spans = read_trace(trace_path(dirpath))

    by_seq: Dict[int, List[Dict[str, Any]]] = {}
    command_spans = 0
    for span in spans:
        seq = span.get("tags", {}).get("seq")
        if isinstance(seq, int):
            command_spans += 1
            by_seq.setdefault(seq, []).append(span)

    report = RoundtripReport(command_spans=command_spans)
    for rec in records:
        report.checked += 1
        matches = by_seq.get(rec.seq, [])
        if len(matches) != 1:
            report.problems.append(
                f"seq {rec.seq}: expected exactly one command span, "
                f"found {len(matches)}")
            continue
        span = matches[0]
        if span.get("parent") is not None:
            report.problems.append(
                f"seq {rec.seq}: command span {span.get('id')} is not "
                f"top-level (parent {span.get('parent')})")
        tags = span.get("tags", {})
        if tags.get("op") != rec.cmd.get("op"):
            report.problems.append(
                f"seq {rec.seq}: span op {tags.get('op')!r} != journaled "
                f"op {rec.cmd.get('op')!r}")
        stamp = _cmd_stamp(rec.cmd)
        if stamp is not None and tags.get("stamp") != stamp:
            report.problems.append(
                f"seq {rec.seq}: span stamp {tags.get('stamp')!r} != "
                f"journaled order stamp {stamp}")
    return report


def fleet_roundtrip(root: str) -> RoundtripReport:
    """Join the router's span stream against every worker's, per request.

    The cross-shard analogue of :func:`trace_roundtrip`: where that
    check joins one session's journal against its spans, this one joins
    the *fleet's* span streams against each other on the request ids the
    edge minted.  For every request id found anywhere under the service
    root:

    * **exactly one** router ``route`` span exists — zero means a worker
      recorded spans for a request the router never routed (a context
      leak), two means an id collision;
    * every worker span's ``parent`` resolves among the same origin's
      spans of the same request — no orphan fragments;
    * a routed command verb (``apply``/``undo``/``undo-lifo``/
      ``edit-del``/``batch``) has **exactly one** top-level ``command``
      span across the workers, it lives in the shard the router chose,
      and — when the route succeeded — it carries the ``seq``
      annotation that joins it onward to the shard's journal.

    ``checked`` counts request ids examined; ``command_spans`` counts
    the top-level worker command spans that joined.
    """
    # lazy imports: collector pulls the service layer for path layout
    from repro.obs.collector import ORIGIN_ROUTER, collect_requests
    from repro.service.server import COMMAND_VERBS
    from repro.service.shard import SHARD_DIR_FMT

    command_verbs = set(COMMAND_VERBS) | {"batch"}
    report = RoundtripReport()
    for request, trace in collect_requests(root).items():
        report.checked += 1
        routes = [s for s in trace.spans
                  if s["origin"] == ORIGIN_ROUTER and s["name"] == "route"]
        if len(routes) != 1:
            report.problems.append(
                f"{request}: expected exactly one router route span, "
                f"found {len(routes)}")
            continue
        route = routes[0]
        worker_spans = [s for s in trace.spans
                        if s["origin"] != ORIGIN_ROUTER]
        for span in worker_spans:
            parent = span.get("parent")
            if parent is None:
                continue
            same_origin = {s["id"] for s in worker_spans
                           if s["origin"] == span["origin"]}
            if parent not in same_origin:
                report.problems.append(
                    f"{request}: span {span.get('id')} "
                    f"({span['origin']}: {span['name']}) has unresolved "
                    f"parent {parent}")
        tags = route.get("tags", {})
        if tags.get("kind") != "session" or \
                tags.get("verb") not in command_verbs:
            continue
        commands = [s for s in worker_spans
                    if s["name"] == "command" and s.get("parent") is None]
        routed_ok = route.get("status") == "ok"
        # a failed route may legitimately have zero command spans (the
        # request died before reaching the engine — unknown session,
        # dead worker); more than one is always wrong, and a successful
        # route must have exactly one
        if len(commands) > 1 or (routed_ok and len(commands) != 1):
            report.problems.append(
                f"{request}: routed {tags.get('verb')!r} has "
                f"{len(commands)} top-level worker command span(s), "
                f"expected exactly one")
            continue
        if not commands:
            continue
        report.command_spans += 1
        command = commands[0]
        shard = tags.get("shard")
        if isinstance(shard, int) and not command["origin"].startswith(
                SHARD_DIR_FMT.format(shard) + "/"):
            report.problems.append(
                f"{request}: command span recorded in "
                f"{command['origin']!r}, but the router routed to shard "
                f"{shard}")
        if routed_ok and not isinstance(
                command.get("tags", {}).get("seq"), int):
            report.problems.append(
                f"{request}: committed command span "
                f"{command.get('id')} has no seq annotation")
    return report


def audit_roundtrip(dirpath: str) -> RoundtripReport:
    """Join a session's journal tail against its audit log.

    The audit log (``audit.jsonl``, see :mod:`repro.obs.provenance`) is
    appended once per journaled command, so the two must agree on the
    journal tail: every journal record joins **exactly one** audit entry
    with the same seq, op, order stamp, failure status, and — for undos
    — the same undone set.  Audit seqs must be unique and strictly
    increasing, which is precisely what recovery-replay double-logging
    would break (replayed commands would re-append entries with already
    -used seqs).  Entries for truncated journal records are tolerated,
    like the trace check; entries with a seq *beyond* the journal tail
    are not — they describe commands the journal never committed.

    Reuses :class:`RoundtripReport`; ``command_spans`` counts audit
    entries here.
    """
    # lazy import for the same layering reason as trace_roundtrip
    from repro.obs.provenance import AUDIT_SCHEMA, audit_path, read_audit
    from repro.service.journal import scan_journal
    from repro.service.recovery import JOURNAL_FILE

    records, _bytes, _torn = scan_journal(os.path.join(dirpath, JOURNAL_FILE))
    entries = read_audit(audit_path(dirpath))

    report = RoundtripReport(command_spans=len(entries))
    by_seq: Dict[int, List[Dict[str, Any]]] = {}
    last_seq = None
    for entry in entries:
        seq = entry.get("seq")
        by_seq.setdefault(seq, []).append(entry)
        if last_seq is not None and seq <= last_seq:
            report.problems.append(
                f"audit seq {seq} follows {last_seq}: entries must be "
                "strictly increasing (recovery replay double-logging?)")
        last_seq = seq
        if entry.get("schema") != AUDIT_SCHEMA:
            report.problems.append(
                f"audit seq {seq}: unknown schema {entry.get('schema')!r}")

    journal_seqs = {rec.seq for rec in records}
    if records and last_seq is not None and last_seq > records[-1].seq:
        report.problems.append(
            f"audit seq {last_seq} is beyond the journal tail "
            f"(last journaled seq {records[-1].seq})")
    for rec in records:
        report.checked += 1
        matches = by_seq.get(rec.seq, [])
        if len(matches) != 1:
            report.problems.append(
                f"seq {rec.seq}: expected exactly one audit entry, "
                f"found {len(matches)}")
            continue
        entry = matches[0]
        if entry.get("op") != rec.cmd.get("op"):
            report.problems.append(
                f"seq {rec.seq}: audit op {entry.get('op')!r} != journaled "
                f"op {rec.cmd.get('op')!r}")
        stamp = _cmd_stamp(rec.cmd)
        if stamp is not None and entry.get("stamp") != stamp:
            report.problems.append(
                f"seq {rec.seq}: audit stamp {entry.get('stamp')!r} != "
                f"journaled order stamp {stamp}")
        failed = bool(rec.cmd.get("failed"))
        if (entry.get("status") == "failed") != failed:
            report.problems.append(
                f"seq {rec.seq}: audit status {entry.get('status')!r} "
                f"disagrees with journaled failed={failed}")
        undone = rec.cmd.get("undone")
        if undone is not None and entry.get("undone") != list(undone):
            report.problems.append(
                f"seq {rec.seq}: audit undone {entry.get('undone')!r} != "
                f"journaled {undone}")
        if rec.cmd.get("op") == "batch":
            j_subs = rec.cmd.get("commands", [])
            a_subs = entry.get("commands", [])
            if len(j_subs) != len(a_subs):
                report.problems.append(
                    f"seq {rec.seq}: audit batch has {len(a_subs)} "
                    f"sub-command(s), journal has {len(j_subs)}")
    # every audit entry inside the journal window must have joined
    if records:
        first_seq = records[0].seq
        for seq, group in by_seq.items():
            if not isinstance(seq, int):
                report.problems.append(f"audit entry with bad seq {seq!r}")
            elif seq >= first_seq and seq not in journal_seqs:
                report.problems.append(
                    f"audit seq {seq} has no journal record")
    return report
