"""Rolling-window SLO tracking over the request stream.

Latency histograms and error counters accumulate since process start;
an operator (and the CI gate) asks a different question: *over the last
few minutes*, what fraction of requests succeeded, and where is the
tail latency — against explicit objectives.  :class:`SloTracker`
answers it with a bounded rolling window of per-request samples.

The report is deliberately JSON-first (served verbatim by the ``_ slo``
verb and the ``/varz`` endpoint) and carries its own verdict: ``ok``
plus a ``violations`` list, so ``scripts/check_slo.py`` gates CI on the
same document an operator reads.

Objectives default to availability ≥ 99% and p95 ≤ 500 ms — adjust at
construction; an empty window is vacuously healthy (no traffic is not
an outage from the service's own point of view — liveness is
``/healthz``'s job).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Deque, Dict, Optional, Tuple

__all__ = ["SloTracker"]


class SloTracker:
    """Availability and tail latency over a rolling time window.

    Thread-safe: the TCP front-end records from many connection
    threads.  The sample window is bounded both by time (``window_s``)
    and count (``max_samples``) so a traffic burst cannot grow memory
    without limit — when the count bound trims the window, the report
    says so (``window_trimmed``).
    """

    def __init__(self, window_s: float = 300.0, *,
                 availability: float = 0.99,
                 p95_ms: float = 500.0,
                 max_samples: int = 65536):
        if window_s <= 0:
            raise ValueError("window_s must be > 0")
        self.window_s = window_s
        self.objectives = {"availability": availability, "p95_ms": p95_ms}
        #: (wall ts, duration seconds, ok, deadline_exceeded) samples.
        self._samples: Deque[Tuple[float, float, bool, bool]] = \
            deque(maxlen=max_samples)
        self._lock = threading.Lock()
        #: requests ever recorded (the window forgets, this does not).
        self.recorded = 0

    def record(self, duration_s: float, ok: bool, *,
               deadline_exceeded: bool = False,
               ts: Optional[float] = None) -> None:
        """Add one served request to the window."""
        with self._lock:
            self._samples.append((ts if ts is not None else time.time(),
                                  duration_s, ok, deadline_exceeded))
            self.recorded += 1

    def _prune_locked(self, now: float) -> None:
        cutoff = now - self.window_s
        while self._samples and self._samples[0][0] < cutoff:
            self._samples.popleft()

    def report(self, now: Optional[float] = None) -> Dict[str, Any]:
        """The current window's SLO document, verdict included."""
        now = now if now is not None else time.time()
        with self._lock:
            self._prune_locked(now)
            samples = list(self._samples)
            trimmed = (self._samples.maxlen is not None
                       and len(self._samples) == self._samples.maxlen)
        requests = len(samples)
        errors = sum(1 for _ts, _d, ok, _de in samples if not ok)
        exceeded = sum(1 for _ts, _d, _ok, de in samples if de)
        durations = sorted(d for _ts, d, _ok, _de in samples)

        def pct(q: float) -> float:
            if not durations:
                return 0.0
            # nearest-rank on the retained samples — exact, not a
            # bucket estimate: the window holds real durations
            idx = min(len(durations) - 1, max(0, round(q * len(durations))
                                              - 1))
            return durations[idx]

        availability = 1.0 if requests == 0 else \
            (requests - errors) / requests
        p95_ms = pct(0.95) * 1e3
        violations = []
        if requests:
            if availability < self.objectives["availability"]:
                violations.append(
                    f"availability {availability:.4f} < objective "
                    f"{self.objectives['availability']:.4f}")
            if p95_ms > self.objectives["p95_ms"]:
                violations.append(
                    f"p95 {p95_ms:.1f}ms > objective "
                    f"{self.objectives['p95_ms']:.1f}ms")
        return {
            "window_s": self.window_s,
            "window_trimmed": trimmed,
            "requests": requests,
            "errors": errors,
            "deadline_exceeded": exceeded,
            "availability": round(availability, 6),
            "p50_ms": round(pct(0.5) * 1e3, 3),
            "p95_ms": round(p95_ms, 3),
            "p99_ms": round(pct(0.99) * 1e3, 3),
            "objectives": dict(self.objectives),
            "violations": violations,
            "ok": not violations,
            "recorded_total": self.recorded,
        }
