"""A process-wide registry of counters, gauges, and latency histograms.

Where :mod:`repro.obs.trace` answers "what happened during *this*
command", the metrics registry answers "what has this process done so
far": commands executed per op and status, journal records/bytes/fsyncs,
snapshot writes, session-lock wait and hold times, analysis seconds per
pass.  Instruments are get-or-created by ``(name, labels)`` so call
sites never coordinate:

    REGISTRY.counter("repro_commands_total", op="apply", status="ok").inc()
    REGISTRY.histogram("repro_command_seconds", op="apply").observe(dt)

Two exposition formats:

* :meth:`MetricsRegistry.render` — Prometheus-style text (``# HELP`` /
  ``# TYPE`` headers, ``name{label="v"} value`` samples, cumulative
  ``_bucket{le=...}`` histogram lines);
* :meth:`MetricsRegistry.to_doc` — a JSON-safe dict (the server's
  ``metrics`` verbs and the benchmark JSON reports).

Histograms use fixed latency buckets (100µs .. 10s) so percentile
estimates (:meth:`Histogram.quantile`, linear interpolation inside the
winning bucket) cost O(#buckets) and no sample retention.  All
instruments are thread-safe; the registry itself locks only
get-or-create, never the hot increment path.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "MetricsError", "DEFAULT_BUCKETS", "REGISTRY",
           "merge_histogram_docs", "merge_aggregate_metrics",
           "aggregate_to_prometheus"]

#: fixed latency buckets in seconds (upper bounds; +Inf is implicit).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 10.0)

LabelItems = Tuple[Tuple[str, str], ...]


class MetricsError(RuntimeError):
    """Instrument re-registered under a different type or buckets."""


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` (must be >= 0) to the count."""
        if amount < 0:
            raise MetricsError(f"counter {self.name} cannot decrease")
        with self._lock:
            self.value += amount

    def sample(self) -> Dict[str, Any]:
        """JSON-safe snapshot: labels + current count."""
        return {"labels": dict(self.labels), "value": self.value}


class Gauge:
    """A value that goes up and down (e.g. live sessions)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: Union[int, float]) -> None:
        """Replace the current value."""
        with self._lock:
            self.value = value

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Move the value up by ``amount``."""
        with self._lock:
            self.value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        """Move the value down by ``amount``."""
        self.inc(-amount)

    def sample(self) -> Dict[str, Any]:
        """JSON-safe snapshot: labels + current value."""
        return {"labels": dict(self.labels), "value": self.value}


class Histogram:
    """Fixed-bucket distribution with O(#buckets) percentile estimates.

    Each bucket (including +Inf overflow) can carry one OpenMetrics-
    style *exemplar*: the request id and value of the slowest
    observation that landed in it (see :meth:`observe`).  Exemplars are
    the join from a histogram back to a concrete trace — the ``# {...}``
    suffix in :meth:`MetricsRegistry.render` names a request id that
    ``repro collect`` resolves to a full request tree.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count",
                 "exemplars", "_lock")

    def __init__(self, name: str, labels: LabelItems = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.name = name
        self.labels = labels
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise MetricsError(f"histogram {name} needs at least one bucket")
        # one count per finite bucket plus the +Inf overflow bucket
        self.counts = [0] * (len(self.buckets) + 1)
        #: per-bucket exemplar: None, or {"request": id, "value": obs} of
        #: the largest observation seen in that bucket so far.
        self.exemplars: List[Optional[Dict[str, Any]]] = \
            [None] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: Union[int, float],
                exemplar: Optional[str] = None) -> None:
        """Record one observation (seconds, bytes, whatever the name says).

        ``exemplar`` (a request id, typically from
        :func:`repro.obs.trace.current_request`) attaches the sample to
        its bucket when it is the slowest seen there — so every bucket
        remembers the worst request it ever absorbed, at O(1) cost and
        no sample retention.
        """
        idx = bisect_left(self.buckets, value)
        with self._lock:
            self.counts[idx] += 1
            self.sum += value
            self.count += 1
            if exemplar is not None:
                prior = self.exemplars[idx]
                if prior is None or value >= prior["value"]:
                    self.exemplars[idx] = {"request": str(exemplar),
                                           "value": float(value)}

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0..1), interpolated inside the bucket.

        Returns 0.0 for an empty histogram.  Observations in the +Inf
        overflow bucket are credited the largest finite bound — an
        underestimate, which is the honest direction for a latency SLO.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricsError(f"quantile {q} outside [0, 1]")
        with self._lock:
            total = self.count
            counts = list(self.counts)
        if total == 0:
            return 0.0
        target = q * total
        cumulative = 0
        for i, n in enumerate(counts):
            if n == 0:
                continue
            if cumulative + n >= target:
                if i >= len(self.buckets):  # overflow bucket
                    return self.buckets[-1]
                lo = self.buckets[i - 1] if i > 0 else 0.0
                hi = self.buckets[i]
                frac = (target - cumulative) / n
                return lo + (hi - lo) * frac
            cumulative += n
        return self.buckets[-1]

    def sample(self) -> Dict[str, Any]:
        """JSON-safe snapshot: per-bucket counts, sum/count, p50/p95.

        When any bucket carries an exemplar, the snapshot includes an
        ``exemplars`` list aligned with ``buckets`` plus the overflow
        slot (entries ``None`` or ``{"request", "value"}``) — the wire
        form the cross-shard merge keeps the slowest of.
        """
        with self._lock:
            counts = list(self.counts)
            exemplars = [dict(e) if e else None for e in self.exemplars]
            total, acc = self.count, self.sum
        doc = {"labels": dict(self.labels),
               "buckets": [list(pair) for pair in
                           zip(self.buckets, counts[:-1])],
               "overflow": counts[-1], "sum": acc, "count": total,
               "p50": self.quantile(0.5), "p95": self.quantile(0.95)}
        if any(e is not None for e in exemplars):
            doc["exemplars"] = exemplars
        return doc


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create home for every instrument in one process.

    The module-level :data:`REGISTRY` is the process-wide default every
    instrumented seam falls back to; tests and benchmarks pass their own
    registry for isolation.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[Tuple[str, LabelItems], Instrument] = {}
        self._kinds: Dict[str, str] = {}
        self._help: Dict[str, str] = {}

    @staticmethod
    def _key(name: str, labels: Dict[str, Any]) -> Tuple[str, LabelItems]:
        items = tuple(sorted((k, str(v)) for k, v in labels.items()))
        return name, items

    def _get(self, cls, name: str, help: str, labels: Dict[str, Any],
             **kwargs) -> Instrument:
        key = self._key(name, labels)
        with self._lock:
            inst = self._instruments.get(key)
            if inst is None:
                if self._kinds.get(name, cls.kind) != cls.kind:
                    raise MetricsError(
                        f"{name} already registered as "
                        f"{self._kinds[name]}, not {cls.kind}")
                inst = cls(name, key[1], **kwargs)
                self._instruments[key] = inst
                self._kinds[name] = cls.kind
                if help:
                    self._help[name] = help
            elif not isinstance(inst, cls):
                raise MetricsError(
                    f"{name} already registered as {inst.kind}, "
                    f"not {cls.kind}")
        return inst

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        """The counter named ``name`` with exactly these labels."""
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        """The gauge named ``name`` with exactly these labels."""
        return self._get(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  **labels: Any) -> Histogram:
        """The histogram named ``name`` with exactly these labels."""
        return self._get(Histogram, name, help, labels, buckets=buckets)

    # -- exposition ----------------------------------------------------------

    def _by_name(self) -> Dict[str, List[Instrument]]:
        with self._lock:
            out: Dict[str, List[Instrument]] = {}
            for (name, _labels), inst in sorted(self._instruments.items()):
                out.setdefault(name, []).append(inst)
        return out

    @staticmethod
    def _escape_label(value: str) -> str:
        """Prometheus label-value escaping: backslash, quote, newline."""
        return (value.replace("\\", "\\\\").replace('"', '\\"')
                .replace("\n", "\\n"))

    @staticmethod
    def _escape_help(text: str) -> str:
        """Prometheus HELP escaping: backslash and newline only."""
        return text.replace("\\", "\\\\").replace("\n", "\\n")

    @classmethod
    def _label_str(cls, labels: LabelItems, extra: str = "") -> str:
        parts = [f'{k}="{cls._escape_label(v)}"' for k, v in labels]
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""

    @classmethod
    def _exemplar_str(cls, exemplar: Optional[Dict[str, Any]]) -> str:
        """The OpenMetrics exemplar suffix for one ``_bucket`` sample:
        `` # {request="r-..."} <value>`` (empty when the bucket has
        none).  The request id is label-escaped like any label value."""
        if not exemplar:
            return ""
        rid = cls._escape_label(str(exemplar.get("request", "")))
        return f' # {{request="{rid}"}} {exemplar.get("value", 0.0)}'

    def render(self) -> str:
        """Prometheus-style text exposition of every instrument."""
        lines: List[str] = []
        for name, instruments in self._by_name().items():
            help_text = self._help.get(name)
            if help_text:
                lines.append(f"# HELP {name} "
                             f"{self._escape_help(help_text)}")
            lines.append(f"# TYPE {name} {instruments[0].kind}")
            for inst in instruments:
                if isinstance(inst, Histogram):
                    cumulative = 0
                    for i, (bound, count) in enumerate(
                            zip(inst.buckets, inst.counts)):
                        cumulative += count
                        le = 'le="' + str(bound) + '"'
                        lines.append(
                            f"{name}_bucket"
                            f"{self._label_str(inst.labels, le)}"
                            f" {cumulative}"
                            f"{self._exemplar_str(inst.exemplars[i])}")
                    inf = 'le="+Inf"'
                    lines.append(
                        f"{name}_bucket"
                        f"{self._label_str(inst.labels, inf)}"
                        f" {inst.count}"
                        f"{self._exemplar_str(inst.exemplars[-1])}")
                    lines.append(f"{name}_sum"
                                 f"{self._label_str(inst.labels)} {inst.sum}")
                    lines.append(f"{name}_count"
                                 f"{self._label_str(inst.labels)} "
                                 f"{inst.count}")
                else:
                    lines.append(f"{name}{self._label_str(inst.labels)} "
                                 f"{inst.value}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_doc(self) -> Dict[str, Any]:
        """JSON-safe dump: name -> {kind, help, samples: [...]}."""
        out: Dict[str, Any] = {}
        for name, instruments in self._by_name().items():
            out[name] = {"kind": instruments[0].kind,
                         "help": self._help.get(name, ""),
                         "samples": [inst.sample() for inst in instruments]}
        return out

    def value(self, name: str, **labels: Any) -> Optional[float]:
        """Convenience: a counter/gauge value (None when absent)."""
        inst = self._instruments.get(self._key(name, labels))
        if inst is None or isinstance(inst, Histogram):
            return None
        return inst.value

    def total(self, name: str) -> float:
        """Sum of a counter/gauge across every label combination."""
        total = 0.0
        with self._lock:
            for (n, _labels), inst in self._instruments.items():
                if n == name and not isinstance(inst, Histogram):
                    total += inst.value
        return total

    def reset(self) -> None:
        """Drop every instrument (test isolation)."""
        with self._lock:
            self._instruments.clear()
            self._kinds.clear()
            self._help.clear()


# -- cross-shard merging ------------------------------------------------------
#
# The sharded front-end (repro.service.shard) aggregates metrics that
# were sampled in *separate worker processes*, so the merge operates on
# the JSON-safe sample documents the wire carries, never on live
# instrument objects.

def merge_histogram_docs(docs: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Bucket-wise merge of :meth:`Histogram.sample` documents.

    Every document must use the same bucket bounds (they all come from
    the same instrument definition on each shard); counts, overflow,
    sum, and count add bucket-wise, and p50/p95 are re-estimated from
    the merged counts — quantiles of shards cannot be averaged, but
    their bucket counts can be summed exactly.  Exemplars survive the
    merge: each bucket keeps the slowest exemplar any shard recorded
    for it, which preserves the invariant the exemplar states ("the
    worst request this bucket absorbed") across the fleet.
    """
    if not docs:
        raise MetricsError("cannot merge zero histogram documents")
    bounds = [pair[0] for pair in docs[0]["buckets"]]
    merged = Histogram("merged", buckets=bounds)
    for doc in docs:
        if [pair[0] for pair in doc["buckets"]] != bounds:
            raise MetricsError("histogram bucket bounds differ across "
                               "shards; refusing a lossy merge")
        for i, (_bound, count) in enumerate(doc["buckets"]):
            merged.counts[i] += count
        merged.counts[-1] += doc["overflow"]
        merged.sum += doc["sum"]
        merged.count += doc["count"]
        for i, exemplar in enumerate(doc.get("exemplars") or []):
            if exemplar is None:
                continue
            prior = merged.exemplars[i]
            if prior is None or exemplar["value"] >= prior["value"]:
                merged.exemplars[i] = dict(exemplar)
    return merged.sample()


def merge_aggregate_metrics(
        docs: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge per-shard ``SessionManager.aggregate_metrics()`` documents.

    Scalar ``totals`` fields and the eviction/reopen counts are summed,
    the live/on-disk session lists are concatenated (a session lives on
    exactly one shard, so the union is disjoint), and the per-shard
    command-latency histograms are merged bucket-wise via
    :func:`merge_histogram_docs`.  Served by the sharded router's
    ``_ metrics`` verb.
    """
    totals: Dict[str, float] = {}
    for doc in docs:
        for field, value in doc.get("totals", {}).items():
            totals[field] = totals.get(field, 0) + value
    merged: Dict[str, Any] = {
        "totals": totals,
        "live": sorted(n for d in docs for n in d.get("live", [])),
        "on_disk": sorted(n for d in docs for n in d.get("on_disk", [])),
        "evictions": sum(d.get("evictions", 0) for d in docs),
        "reopens": sum(d.get("reopens", 0) for d in docs),
        "shards": len(docs),
    }
    latencies = [d["latency"] for d in docs if d.get("latency")]
    if latencies:
        merged["latency"] = merge_histogram_docs(latencies)
    analytics = [d["analytics"] for d in docs if d.get("analytics")]
    if analytics:
        from repro.obs.analytics import merge_analytics_docs
        merged["analytics"] = merge_analytics_docs(analytics)
    return merged


def aggregate_to_prometheus(doc: Dict[str, Any]) -> str:
    """Render an ``aggregate_metrics`` document as Prometheus text.

    The ``/metrics`` endpoint serves fleet totals, and those exist only
    as the JSON documents the shards shipped over the pipe (already
    merged by :func:`merge_aggregate_metrics`) — there is no live
    registry holding them.  So this builds one: a throwaway
    :class:`MetricsRegistry` populated from the document, rendered by
    the same :meth:`MetricsRegistry.render` the tests already pin down,
    which keeps the two exposition formats from drifting apart.

    Works on both shapes: a single manager's document (no ``shards``
    key) and the cross-shard merge.
    """
    registry = MetricsRegistry()
    for field, value in sorted(doc.get("totals", {}).items()):
        counter = registry.counter(f"repro_fleet_{field}",
                                   f"{field} summed across the fleet")
        counter.value = float(value)
    registry.gauge("repro_fleet_live_sessions",
                   "sessions currently live in a manager").set(
                       len(doc.get("live", [])))
    registry.gauge("repro_fleet_sessions_on_disk",
                   "sessions present on disk").set(
                       len(doc.get("on_disk", [])))
    registry.counter("repro_fleet_evictions_total",
                     "LRU session evictions").value = \
        float(doc.get("evictions", 0))
    registry.counter("repro_fleet_reopens_total",
                     "sessions reopened from disk").value = \
        float(doc.get("reopens", 0))
    if "shards" in doc:
        registry.gauge("repro_fleet_shards",
                       "shard documents merged into this exposition").set(
                           doc["shards"])
    latency = doc.get("latency")
    if latency:
        bounds = [pair[0] for pair in latency["buckets"]]
        hist = registry.histogram(
            "repro_fleet_command_seconds",
            "end-to-end command latency, merged bucket-wise",
            buckets=bounds)
        hist.counts = [pair[1] for pair in latency["buckets"]] + \
            [latency["overflow"]]
        hist.sum = latency["sum"]
        hist.count = latency["count"]
        exemplars = latency.get("exemplars")
        if exemplars:
            hist.exemplars = [dict(e) if e else None for e in exemplars]
    analytics = doc.get("analytics")
    if analytics:
        # fleet-merged decision analytics render with their own names
        # (they are already repro_*-namespaced, and this registry holds
        # nothing else) through the same pinned render path
        from repro.obs.analytics import analytics_to_registry
        analytics_to_registry(analytics, registry)
    return registry.render()


#: the process-wide default registry instrumented seams fall back to.
REGISTRY = MetricsRegistry()
