"""End-to-end observability: tracing spans, metrics, flight recorder.

Three pieces, layered so the rest of the system never pays for what it
does not use:

* :mod:`repro.obs.trace` — :class:`Tracer` producing nested spans with
  an in-memory ring-buffer :class:`FlightRecorder` and JSONL export;
  ``Tracer.disabled`` is the zero-cost off switch engines default to.
* :mod:`repro.obs.metrics` — the process-wide :class:`MetricsRegistry`
  of counters/gauges/fixed-bucket latency histograms, with
  Prometheus-style text exposition and a JSON dump.
* :mod:`repro.obs.check` — the journal ↔ trace round-trip verifier
  behind ``python -m repro trace ROOT NAME --check``.

See docs/OBSERVABILITY.md for the span model and the metric catalog.
"""

from repro.obs.check import RoundtripReport, trace_path, trace_roundtrip
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
)
from repro.obs.trace import FlightRecorder, Span, Tracer, read_trace

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "REGISTRY",
    "RoundtripReport",
    "Span",
    "Tracer",
    "read_trace",
    "trace_path",
    "trace_roundtrip",
]
