"""End-to-end observability: tracing spans, metrics, flight recorder.

Layered so the rest of the system never pays for what it does not use:

* :mod:`repro.obs.trace` — :class:`Tracer` producing nested spans with
  an in-memory ring-buffer :class:`FlightRecorder` and JSONL export;
  ``Tracer.disabled`` is the zero-cost off switch engines default to.
  Also the fleet request context (:func:`request_context`): the edge
  mints one request id per request, every span produced while it is
  active carries it, and the sharded router forwards it across the
  worker pipe — the join key for cross-process traces.
* :mod:`repro.obs.metrics` — the process-wide :class:`MetricsRegistry`
  of counters/gauges/fixed-bucket latency histograms, with
  Prometheus-style text exposition, a JSON dump, and cross-shard
  document merging.
* :mod:`repro.obs.collector` — joins the router's span stream with
  every worker's ``trace.jsonl`` into causally-ordered per-request
  fleet traces (``python -m repro collect ROOT``).
* :mod:`repro.obs.check` — the journal ↔ trace ↔ audit round-trip
  verifiers, including the cross-shard :func:`fleet_roundtrip`.
* :mod:`repro.obs.slowlog` / :mod:`repro.obs.slo` — slow-request
  forensics ring and the rolling-window SLO tracker behind the
  ``_ slow`` / ``_ slo`` verbs and ``scripts/check_slo.py``.
* :mod:`repro.obs.expo` — the stdlib HTTP sidecar serving
  ``/metrics``, ``/healthz``, ``/varz``, and ``/pprof``.
* :mod:`repro.obs.profiler` — the stdlib sampling profiler: a daemon
  thread walking ``sys._current_frames()`` into span/request-attributed
  collapsed stacks (``flamegraph.pl`` input), behind ``_ prof``,
  ``/pprof``, and ``python -m repro prof``.
* :mod:`repro.obs.analytics` — decision analytics: a
  ``command_observers`` callback folding every command's provenance
  into per-transform counters and histograms (verdicts, cascade depth,
  collateral fan-out, Table 4 skips, regional-vs-full analysis work).

See docs/OBSERVABILITY.md for the span model and the metric catalog.
"""

from repro.obs.analytics import (
    DecisionAnalytics,
    analytics_doc,
    analytics_to_registry,
    merge_analytics_docs,
)
from repro.obs.check import (
    RoundtripReport,
    audit_roundtrip,
    fleet_roundtrip,
    trace_path,
    trace_roundtrip,
)
from repro.obs.collector import RequestTrace, collect_requests
from repro.obs.expo import ExpoServer
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    aggregate_to_prometheus,
    merge_aggregate_metrics,
    merge_histogram_docs,
)
from repro.obs.profiler import (
    Profiler,
    merge_folded,
    parse_folded,
    render_folded,
)
from repro.obs.slo import SloTracker
from repro.obs.slowlog import SlowLog
from repro.obs.trace import (
    FlightRecorder,
    Span,
    Tracer,
    annotate_request,
    current_request,
    new_request_id,
    read_trace,
    request_context,
    thread_activity,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DecisionAnalytics",
    "ExpoServer",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "Profiler",
    "REGISTRY",
    "RequestTrace",
    "RoundtripReport",
    "SloTracker",
    "SlowLog",
    "Span",
    "Tracer",
    "aggregate_to_prometheus",
    "analytics_doc",
    "analytics_to_registry",
    "annotate_request",
    "audit_roundtrip",
    "collect_requests",
    "current_request",
    "fleet_roundtrip",
    "merge_aggregate_metrics",
    "merge_analytics_docs",
    "merge_folded",
    "merge_histogram_docs",
    "new_request_id",
    "parse_folded",
    "read_trace",
    "render_folded",
    "request_context",
    "thread_activity",
    "trace_path",
    "trace_roundtrip",
]
