"""Slow-request forensics: a ring-buffered log of the worst requests.

Aggregate latency histograms say *that* requests were slow; an incident
needs to know *which* requests, and where inside them the time went.
The :class:`SlowLog` keeps the most recent requests whose wall time
crossed a threshold, each entry carrying the per-request latency
breakdown the instrumented seams accumulated onto the request context
(:func:`repro.obs.trace.annotate_request`): session-lock wait, analysis
timers (the engine's :class:`~repro.analysis.incremental.WorkCounters`
wall-clock keys), journal append/fsync cost.

Design points, mirroring the flight recorder's:

* **Fixed capacity, newest wins** — a deque with ``maxlen``; a burst of
  slow requests keeps the latest ones, which are the ones the operator
  is paged about.
* **Entries are plain JSON-safe dicts** stamped with a wall-clock
  ``ts`` — unlike spans (monotonic, per-process), slow entries are
  merged *across* processes by the sharded router's ``_ slow`` verb,
  and wall clocks are the only cross-process order available (good
  enough for a forensics listing).
* **Threshold semantics** — ``threshold_s`` is the recording floor;
  ``0.0`` records every request (the smoke test and the CI gate run
  that way), ``None`` disables recording entirely.  ``force=True``
  records regardless (deadline-exceeded requests are always evidence).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Dict, List, Optional

__all__ = ["SlowLog"]

#: request lines are truncated to this many characters in an entry — a
#: giant batch line must not turn the ring buffer into a memory hog.
MAX_LINE_CHARS = 200


class SlowLog:
    """Fixed-capacity ring of the most recent slow-request entries."""

    def __init__(self, capacity: int = 256,
                 threshold_s: Optional[float] = 0.25):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.threshold_s = threshold_s
        self._entries: "deque[Dict[str, Any]]" = deque(maxlen=capacity)
        #: requests observed (recorded or not) since construction.
        self.observed = 0
        #: entries ever recorded (``recorded - len(entries())`` were
        #: evicted off the old end of the ring).
        self.recorded = 0

    def observe(self, line: str, duration_s: float, *, ok: bool = True,
                layer: str = "server",
                request: Optional[str] = None,
                breakdown: Optional[Dict[str, Any]] = None,
                force: bool = False) -> bool:
        """Consider one served request; returns whether it was recorded.

        ``layer`` names the vantage point (``router``, ``shard-00``,
        ``server``) so merged fleet listings stay attributable;
        ``breakdown`` is the request context's accumulated forensics
        dict (copied — the context is reused scratch).
        """
        self.observed += 1
        if not force and (self.threshold_s is None
                          or duration_s < self.threshold_s):
            return False
        entry: Dict[str, Any] = {
            "ts": time.time(),
            "layer": layer,
            "line": line.strip()[:MAX_LINE_CHARS],
            "dur_ms": round(duration_s * 1e3, 3),
            "ok": ok,
        }
        if request is not None:
            entry["request"] = request
        if breakdown:
            entry["breakdown"] = dict(breakdown)
        self._entries.append(entry)
        self.recorded += 1
        return True

    def entries(self, tail: Optional[int] = None) -> List[Dict[str, Any]]:
        """The retained entries, oldest first (optionally only the tail)."""
        out = list(self._entries)
        if tail is not None and tail >= 0:
            out = out[len(out) - min(tail, len(out)):]
        return out

    @staticmethod
    def merge(groups: List[List[Dict[str, Any]]],
              tail: Optional[int] = None) -> List[Dict[str, Any]]:
        """Merge per-process entry lists into one fleet listing.

        Ordered by wall-clock ``ts`` (the only cross-process order slow
        entries have), newest last, optionally truncated to the tail —
        the router's ``_ slow [n]`` fan-in.
        """
        merged = sorted((e for group in groups for e in group),
                        key=lambda e: e.get("ts", 0.0))
        if tail is not None and tail >= 0:
            merged = merged[len(merged) - min(tail, len(merged)):]
        return merged
