"""Fleet trace collection: join per-process span streams per request.

A sharded service writes spans in several places at once: the router
streams its ``route`` spans to ``router-trace.jsonl`` under the service
root, and every session's engine streams its command span tree to the
session directory's ``trace.jsonl`` inside a shard.  Each span produced
while a request context was active carries the ``request`` tag the edge
minted (:mod:`repro.obs.trace`), so one TCP request leaves joinable
fragments in two processes.  This module performs the join: it sweeps
every span stream under a service root, groups spans by request id, and
orders each group causally into a :class:`RequestTrace`.

Causal order is the only order available.  Span ``start`` values are
``perf_counter`` readings — meaningful within one process, meaningless
between two — so a fleet trace is ordered structurally instead:

* the router's ``route`` span leads (it is the edge: nothing in the
  request happened before it), any other router spans follow in file
  order;
* each worker origin's spans follow as a parent/child tree, siblings
  ordered by their (same-process, hence comparable) ``start``.

Span ids are per-tracer counters, so they are only unique *within* one
origin and one tracer incarnation; parent links are therefore resolved
strictly inside a single origin's spans of a single request, never
across origins or requests.

:func:`fleet_roundtrip` (in :mod:`repro.obs.check`) builds on this to
verify the end-to-end invariant; ``python -m repro collect ROOT``
surfaces both as an operator tool.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.check import TRACE_FILE
from repro.obs.trace import read_trace

__all__ = ["RequestTrace", "ORIGIN_ROUTER", "fleet_trace_files",
           "collect_requests"]

#: the origin label of the router's own span stream.
ORIGIN_ROUTER = "router"


def fleet_trace_files(root: str) -> List[Tuple[str, str]]:
    """Every span-stream file under a service root, as (origin, path).

    The router's stream (when present) is listed first under the origin
    ``"router"``; every ``trace.jsonl`` below the root follows, labelled
    with its directory relative to the root — ``shard-00/alpha`` for a
    sharded layout, plain ``alpha`` for a single-process one — in sorted
    order, so the sweep is deterministic.
    """
    # imported lazily: obs stays importable without the service layer
    from repro.service.shard import router_trace_path

    out: List[Tuple[str, str]] = []
    router = router_trace_path(root)
    if os.path.exists(router):
        out.append((ORIGIN_ROUTER, router))
    found: List[Tuple[str, str]] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        if TRACE_FILE in filenames and os.path.abspath(dirpath) != \
                os.path.abspath(root):
            origin = os.path.relpath(dirpath, root).replace(os.sep, "/")
            found.append((origin, os.path.join(dirpath, TRACE_FILE)))
    out.extend(sorted(found))
    return out


@dataclass
class RequestTrace:
    """One request's spans from every process, causally ordered.

    Each span doc is the ``trace.jsonl`` record augmented with two
    fields: ``origin`` (which stream it came from) and ``depth`` (its
    nesting level inside its origin's span tree — the router's route
    span is depth 0, a worker's top-level command span depth 1, its
    journal append depth 2, and so on).
    """

    request: str
    spans: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def edge(self) -> Optional[Dict[str, Any]]:
        """The router's ``route`` span for this request, if recorded."""
        for span in self.spans:
            if span.get("origin") == ORIGIN_ROUTER and \
                    span.get("name") == "route":
                return span
        return None

    def origins(self) -> List[str]:
        """The distinct origins this request touched, in trace order."""
        seen: List[str] = []
        for span in self.spans:
            if span["origin"] not in seen:
                seen.append(span["origin"])
        return seen

    def to_doc(self) -> Dict[str, Any]:
        """JSON-safe summary document (the ``collect --json`` format)."""
        return {"request": self.request, "origins": self.origins(),
                "spans": [dict(s) for s in self.spans]}

    def render(self) -> str:
        """A human-readable indented tree of the whole request."""
        lines = [f"{self.request} ({len(self.spans)} span(s), "
                 f"origins: {', '.join(self.origins()) or 'none'})"]
        for span in self.spans:
            tags = span.get("tags", {})
            detail = " ".join(
                f"{k}={tags[k]}" for k in sorted(tags)
                if k not in ("request", "service", "session"))
            status = span.get("status", "ok")
            mark = "" if status == "ok" else f" [{status}]"
            indent = "  " * (1 + span.get("depth", 0))
            lines.append(
                f"{indent}{span['origin']}: {span['name']}"
                f"{(' ' + detail) if detail else ''} "
                f"{span.get('dur', 0.0) * 1e3:.3f}ms{mark}")
        return "\n".join(lines)


def _tree_order(spans: List[Dict[str, Any]],
                base_depth: int = 0) -> List[Dict[str, Any]]:
    """One origin's spans of one request, in parent/child DFS order.

    Roots (no parent, or a parent outside this span set — e.g. the
    journal tail was truncated) come in ``start`` order; children
    likewise, which is safe because all spans here share a process.
    """
    by_id = {s.get("id"): s for s in spans}
    children: Dict[Any, List[Dict[str, Any]]] = {}
    roots: List[Dict[str, Any]] = []
    for span in spans:
        parent = span.get("parent")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)
    out: List[Dict[str, Any]] = []

    def visit(span: Dict[str, Any], depth: int) -> None:
        copied = dict(span)
        copied["depth"] = depth
        out.append(copied)
        for child in sorted(children.get(span.get("id"), []),
                            key=lambda s: s.get("start", 0.0)):
            visit(child, depth + 1)

    for root_span in sorted(roots, key=lambda s: s.get("start", 0.0)):
        visit(root_span, base_depth)
    return out


def collect_requests(root: str) -> Dict[str, RequestTrace]:
    """Sweep a service root and join its span streams by request id.

    Returns request traces keyed by request id, in arrival order (the
    order ids first appear in the router's stream, then in the sorted
    worker streams).  Spans without a ``request`` tag — nothing
    produced by the served request path lacks one, but a damaged file
    could — are simply not part of any fleet trace.
    """
    per_request: Dict[str, Dict[str, List[Dict[str, Any]]]] = {}
    for origin, path in fleet_trace_files(root):
        for span in read_trace(path):
            request = span.get("tags", {}).get("request")
            if not isinstance(request, str):
                continue
            span = dict(span)
            span["origin"] = origin
            per_request.setdefault(request, {}).setdefault(
                origin, []).append(span)

    out: Dict[str, RequestTrace] = {}
    for request, by_origin in per_request.items():
        trace = RequestTrace(request)
        router_spans = by_origin.pop(ORIGIN_ROUTER, [])
        # the edge leads: the route span (and any siblings) at depth 0,
        # in file order — one router thread wrote them, so file order
        # is completion order, close enough for a listing
        trace.spans.extend(_tree_order(router_spans, base_depth=0))
        for origin in sorted(by_origin):
            trace.spans.extend(_tree_order(by_origin[origin],
                                           base_depth=1))
        out[request] = trace
    return out
