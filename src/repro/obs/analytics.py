"""Decision analytics: the paper's undo machinery, measured in aggregate.

Provenance trees (:mod:`repro.obs.provenance`) explain *one* undo;
operators need the distribution: which Table 3 conditions fire and how
often, how deep cascades run and how much collateral they drag along,
how often the Table 4 heuristic lets the engine skip a re-check versus
being forced into one, and how much dependence work regional analysis
saved over full re-analysis.  :class:`DecisionAnalytics` is a
``command_observers`` callback that folds every executed command into
the :class:`~repro.obs.metrics.MetricsRegistry`:

=====================================  =====================================
instrument                             meaning
=====================================  =====================================
``repro_decision_commands_total``      commands seen, by op and status
``repro_undo_nodes_total``             provenance ``undo`` nodes by role
                                       (target / affecting / affected /
                                       collateral)
``repro_undo_checks_total``            safety / reversibility re-checks by
                                       verdict
``repro_undo_skips_total``             skipped re-checks by reason
                                       (``table4-heuristic`` /
                                       ``outside-region``)
``repro_violation_total``              violations by stable Table 3 code
``repro_undo_cascade_depth``           histogram: provenance tree depth of
                                       each undo
``repro_undo_collateral``              histogram: extra stamps undone
                                       beyond the target
``repro_analysis_pairs_total``         dependence pairs computed, full vs.
                                       regional (incremental) analysis
=====================================  =====================================

Counters live in an ordinary registry, so they ship across shard pipes
inside the ``_ metrics`` document (:func:`analytics_doc`), merge like
PR 6's totals (:func:`merge_analytics_docs` — counters sum, histograms
merge bucket-wise), and render in ``/metrics`` and ``/varz`` through
the same exposition paths every other instrument uses.

Observer discipline: :meth:`DecisionAnalytics.observe` is wired through
``engine.command_observers``, whose caller isolates exceptions — but an
analytics pass must still never *mutate* the command, so everything
here reads doc-form provenance (plain dicts) and scalar attributes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.obs.metrics import (
    MetricsError,
    MetricsRegistry,
    REGISTRY,
    merge_histogram_docs,
)

__all__ = ["DecisionAnalytics", "ANALYTICS_PREFIXES", "analytics_doc",
           "merge_analytics_docs", "analytics_to_registry"]

#: metric-name prefixes the cross-shard document ships (everything the
#: table above defines; adding an instrument here is all it takes to
#: make it fleet-merged).
ANALYTICS_PREFIXES = ("repro_decision_", "repro_undo_",
                      "repro_violation_", "repro_analysis_pairs_")

#: buckets for cascade depth and collateral fan-out — small integers,
#: not latencies (Fibonacci-ish so the tail still resolves).
DEPTH_BUCKETS = (1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0)
FANOUT_BUCKETS = (0.0, 1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0)


class DecisionAnalytics:
    """Aggregates per-command decision telemetry into a registry.

    Attach once per engine (:meth:`attach`); one instance may serve
    every engine of a :class:`~repro.service.session.SessionManager`,
    since instruments are already get-or-create and thread-safe.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else REGISTRY
        #: top-level commands observed (batch members count separately).
        self.commands = 0

    def attach(self, engine) -> "DecisionAnalytics":
        """Register on one engine's ``command_observers``; returns self."""
        engine.command_observers.append(self.observe)
        return self

    # -- the observer --------------------------------------------------------

    def observe(self, command) -> None:
        """Fold one executed command into the registry (the callback)."""
        self.commands += 1
        self._observe(command, top=True)

    def _observe(self, command, top: bool) -> None:
        m = self.registry
        op = getattr(command, "op", "unknown")
        status = "failed" if getattr(command, "failed", False) else "ok"
        m.counter("repro_decision_commands_total",
                  "commands folded into decision analytics",
                  op=op, status=status).inc()
        if op == "batch":
            # sub-commands carry their own work/provenance; the batch's
            # work is their sum, so only recurse — never count both
            for sub in getattr(command, "commands", None) or []:
                self._observe(sub, top=False)
            return
        work = getattr(command, "work", None) or {}
        full = work.get("dependence_pairs", 0)
        regional = work.get("incremental_pairs", 0)
        if full:
            m.counter("repro_analysis_pairs_total",
                      "dependence pairs computed, by analysis mode",
                      mode="full").inc(full)
        if regional:
            m.counter("repro_analysis_pairs_total",
                      mode="regional").inc(regional)
        undone = getattr(command, "undone", None)
        if op == "undo" and undone is not None:
            m.histogram("repro_undo_collateral",
                        "stamps undone beyond the requested target",
                        buckets=FANOUT_BUCKETS).observe(
                            max(0, len(undone) - 1))
        provenance = getattr(command, "provenance", None)
        if isinstance(provenance, dict):
            self._observe_provenance(provenance)

    def _observe_provenance(self, doc: Dict[str, Any]) -> None:
        m = self.registry
        deepest = 0
        stack: List[Any] = [(doc, 1)]
        while stack:
            node, depth = stack.pop()
            kind = node.get("kind")
            if kind == "undo":
                deepest = max(deepest, depth)
                m.counter("repro_undo_nodes_total",
                          "provenance undo nodes, by cascade role",
                          role=node.get("role") or "target").inc()
            elif kind == "check":
                verdict = node.get("verdict") or {}
                m.counter("repro_undo_checks_total",
                          "cascade re-checks, by check and verdict",
                          check=verdict.get("check", "unknown"),
                          verdict="ok" if verdict.get("ok")
                          else "violated").inc()
            elif kind == "skip":
                m.counter("repro_undo_skips_total",
                          "re-checks the cascade skipped, by reason "
                          "(Table 4 heuristic / outside the region)",
                          reason=node.get("reason") or "unknown").inc()
            for violation in (node.get("verdict") or {}).get(
                    "violations", []):
                m.counter("repro_violation_total",
                          "disabling-condition violations by stable "
                          "Table 3 code",
                          code=violation.get("code") or "unknown").inc()
            for child in node.get("children") or []:
                stack.append((child, depth + 1))
        if deepest:
            m.histogram("repro_undo_cascade_depth",
                        "provenance tree depth of each undo cascade",
                        buckets=DEPTH_BUCKETS).observe(deepest)


# -- cross-shard documents ----------------------------------------------------
#
# Analytics instruments live in each worker's process-local registry;
# the ``_ metrics`` document carries this subset across the pipe, the
# router merges documents, and exposition rebuilds a registry from the
# merge — the exact shape of PR 6's totals/latency merge.

def analytics_doc(registry: MetricsRegistry) -> Dict[str, Any]:
    """The analytics subset of ``registry.to_doc()`` (JSON-safe)."""
    return {name: doc for name, doc in registry.to_doc().items()
            if name.startswith(ANALYTICS_PREFIXES)}


def merge_analytics_docs(
        docs: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge per-shard :func:`analytics_doc` documents.

    Counter samples with the same labels sum; histogram samples with
    the same labels merge bucket-wise via
    :func:`~repro.obs.metrics.merge_histogram_docs`.  Documents may
    cover different instruments (a shard that never ran an undo has no
    cascade histogram) — absent means zero.
    """
    merged: Dict[str, Any] = {}
    for doc in docs:
        for name, entry in doc.items():
            target = merged.setdefault(
                name, {"kind": entry["kind"],
                       "help": entry.get("help", ""), "samples": []})
            if target["kind"] != entry["kind"]:
                raise MetricsError(
                    f"{name} is {target['kind']} on one shard and "
                    f"{entry['kind']} on another")
            if not target["help"]:
                target["help"] = entry.get("help", "")
            for sample in entry.get("samples", []):
                labels = sample.get("labels", {})
                existing = next(
                    (s for s in target["samples"]
                     if s.get("labels", {}) == labels), None)
                if existing is None:
                    target["samples"].append(
                        {k: (dict(v) if isinstance(v, dict) else
                             list(v) if isinstance(v, list) else v)
                         for k, v in sample.items()})
                elif entry["kind"] == "histogram":
                    idx = target["samples"].index(existing)
                    merged_sample = merge_histogram_docs(
                        [existing, sample])
                    merged_sample["labels"] = labels
                    target["samples"][idx] = merged_sample
                else:
                    existing["value"] = existing.get("value", 0) + \
                        sample.get("value", 0)
    return merged


def analytics_to_registry(
        doc: Dict[str, Any],
        registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Rebuild a registry from a (merged) analytics document.

    The exposition bridge: ``/metrics`` renders fleet analytics with
    the same :meth:`~repro.obs.metrics.MetricsRegistry.render` the
    tests pin, by populating a throwaway registry from the document —
    the same trick :func:`~repro.obs.metrics.aggregate_to_prometheus`
    uses for the persistence totals.
    """
    registry = registry if registry is not None else MetricsRegistry()
    for name, entry in sorted(doc.items()):
        for sample in entry.get("samples", []):
            labels = sample.get("labels", {})
            if entry["kind"] == "counter":
                registry.counter(name, entry.get("help", ""),
                                 **labels).value = \
                    float(sample.get("value", 0))
            elif entry["kind"] == "gauge":
                registry.gauge(name, entry.get("help", ""),
                               **labels).set(sample.get("value", 0))
            else:
                bounds = [pair[0] for pair in sample["buckets"]]
                hist = registry.histogram(name, entry.get("help", ""),
                                          buckets=bounds, **labels)
                hist.counts = [pair[1] for pair in sample["buckets"]] + \
                    [sample.get("overflow", 0)]
                hist.sum = sample.get("sum", 0.0)
                hist.count = sample.get("count", 0)
                exemplars = sample.get("exemplars")
                if exemplars:
                    hist.exemplars = [dict(e) if e else None
                                      for e in exemplars]
    return registry
