"""Live exposition: ``/metrics``, ``/healthz``, ``/varz`` over HTTP.

The line protocol is a fine operator surface for a human with a
terminal, but scrapers and load balancers speak HTTP: Prometheus pulls
``/metrics``, an orchestrator probes ``/healthz``, an engineer mid-
incident curls ``/varz``.  :class:`ExpoServer` is the stdlib-only
sidecar that serves all three from a daemon thread next to whichever
front-end is running — it never touches the request path.

The front is duck-typed: anything with ``expo_metrics_doc()`` /
``expo_health()`` / ``expo_varz()`` works, which both
:class:`~repro.service.server.SessionServer` and
:class:`~repro.service.shard.ShardRouter` implement — so the sidecar
is identical over a single process and a sharded fleet.

Endpoint contracts:

* ``GET /metrics`` — Prometheus text (the fleet-merged aggregate
  document rendered by :func:`repro.obs.metrics.
  aggregate_to_prometheus`); ``500`` with the error text when the
  document cannot be assembled (a dead shard mid-scrape).
* ``GET /healthz`` — the health JSON; HTTP ``200`` when ``ok`` is true,
  ``503`` otherwise, so probes need only look at the status code.
* ``GET /varz`` — the full drill-down JSON (health + SLO window + slow
  requests + metrics), always ``200`` when assemblable.
* ``GET /pprof?seconds=N&hz=H`` — collapsed-stack profile text
  (``flamegraph.pl`` input) from the front's sampling profiler
  (:mod:`repro.obs.profiler`): an on-demand ``seconds``-long window
  (default 1, capped at 60) sampled at ``hz``, or the accumulated
  profile when an operator already opened a ``_ prof start`` window.
  Served only when the front implements ``expo_pprof`` (both fronts
  do).

Anything else is ``404``.  Exposition must never take the service
down: every handler catches broad and answers ``500`` instead of
letting an exception kill the connection thread.
"""

from __future__ import annotations

import json
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Tuple

__all__ = ["ExpoServer"]

#: the content type Prometheus' text parser expects.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
JSON_CONTENT_TYPE = "application/json; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    """One request handler bound (via subclassing) to one front."""

    #: set by ExpoServer when it manufactures the per-front subclass.
    front: Any = None
    #: keep connections short-lived; a scraper reconnects per scrape.
    protocol_version = "HTTP/1.0"

    def _reply(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path, _, query = self.path.partition("?")
        params = urllib.parse.parse_qs(query)
        try:
            if path == "/metrics":
                from repro.obs.metrics import aggregate_to_prometheus
                body = aggregate_to_prometheus(self.front.expo_metrics_doc())
                self._reply(200, PROMETHEUS_CONTENT_TYPE, body)
            elif path == "/healthz":
                doc = self.front.expo_health()
                self._reply(200 if doc.get("ok") else 503,
                            JSON_CONTENT_TYPE,
                            json.dumps(doc, sort_keys=True) + "\n")
            elif path == "/varz":
                self._reply(200, JSON_CONTENT_TYPE,
                            json.dumps(self.front.expo_varz(),
                                       sort_keys=True) + "\n")
            elif path == "/pprof" and hasattr(self.front, "expo_pprof"):
                seconds = min(60.0, float(
                    params.get("seconds", ["1"])[0]))
                hz = float(params["hz"][0]) if "hz" in params else None
                body = self.front.expo_pprof(seconds=seconds, hz=hz)
                self._reply(200, "text/plain; charset=utf-8",
                            body + ("\n" if body else ""))
            else:
                self._reply(404, JSON_CONTENT_TYPE,
                            json.dumps({"error": "not found",
                                        "paths": ["/metrics", "/healthz",
                                                  "/varz", "/pprof"]}) + "\n")
        except Exception as exc:  # noqa: BLE001 - exposition never kills
            try:
                self._reply(500, JSON_CONTENT_TYPE,
                            json.dumps({"error": str(exc) or repr(exc)})
                            + "\n")
            except OSError:
                pass  # client hung up mid-error; nothing left to say

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Silence the default stderr access log (scrapes are periodic)."""


class ExpoServer:
    """The HTTP sidecar: a ThreadingHTTPServer on a daemon thread.

    ``port=0`` binds an ephemeral port; read :attr:`address` for the
    bound ``(host, port)`` (the CLI prints it as ``metrics on ...``).
    Start with :meth:`start`, stop with :meth:`close` (idempotent);
    also a context manager.
    """

    def __init__(self, front: Any, host: str = "127.0.0.1", port: int = 0):
        handler = type("_BoundHandler", (_Handler,), {"front": front})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-expo",
            daemon=True)
        self._started = False
        self._closed = False

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` pair."""
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    def start(self) -> "ExpoServer":
        """Begin serving (returns self for one-line construction)."""
        if not self._started:
            self._thread.start()
            self._started = True
        return self

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._started:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
        self._httpd.server_close()

    def __enter__(self) -> "ExpoServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()
