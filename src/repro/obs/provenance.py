"""Decision provenance: structured verdicts, the causal provenance tree,
and the append-only audit log.

The paper's machinery is a machinery of *decisions*: Table 3's disabling
conditions decide whether a transformation is still safe or reversible,
Table 4's reverse-destroy matrix decides which safety re-checks an undo
may skip, and the Figure 4 cascade decides which other transformations
an undo drags along.  Until this module, those verdicts surfaced as bare
booleans and exception strings — good enough for an interactive user,
useless for an operator of a shared undo service asking "why did undoing
stamp 7 also undo stamps 9 and 12?" after the fact.

Three artifacts, all JSON-safe and schema-versioned:

:class:`Verdict`
    One safety or reversibility decision about one record: which Table 3
    condition fired (a stable machine-readable ``code`` plus the human
    message), which primitive action and record *caused* it, and the
    clobbered pattern element or annotation that witnessed it.  Built
    from the structured :class:`~repro.transforms.base.SafetyResult` /
    :class:`~repro.transforms.base.ReversibilityResult` the check paths
    now return.

:class:`ProvenanceNode`
    One node of the causal tree an undo builds: the target undo at the
    root; re-checks, Table 4 heuristic skips, region skips, and the
    affecting/affected undos they forced as children.  Each forced undo
    carries the verdict that forced it.  The tree rides on
    ``UndoReport.provenance`` / ``ReverseUndoReport.provenance`` and
    exports to text, JSON, and DOT.

the audit log (``audit.jsonl``)
    One append-only entry per journaled command, written by
    :class:`repro.service.session.DurableSession` beside ``trace.jsonl``
    and carrying the command's provenance tree.  Because the session
    attaches its observer only *after* recovery replay, a reopened
    session never double-logs; :func:`repro.obs.check.audit_roundtrip`
    cross-checks the log against the journal the same way
    ``trace_roundtrip`` checks the span stream.

This module is deliberately import-light: it duck-types the result and
report objects it summarizes, so ``obs`` keeps depending on nothing
above it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["AUDIT_SCHEMA", "AUDIT_FILE", "Verdict", "ProvenanceNode",
           "audit_path", "safety_verdict", "reversibility_verdict",
           "command_audit", "audit_entry", "read_audit", "entry_trees",
           "stamp_events", "stamp_trees", "explain_doc",
           "render_explanation", "provenance_to_dot"]

#: version stamp written into every audit entry; bump on layout changes.
AUDIT_SCHEMA = 1

#: audit entries land here, beside the journal and ``trace.jsonl``.
AUDIT_FILE = "audit.jsonl"


def audit_path(dirpath: str) -> str:
    """The audit-log file of one session directory."""
    return os.path.join(dirpath, AUDIT_FILE)


# ---------------------------------------------------------------------------
# Verdicts
# ---------------------------------------------------------------------------


def _violation_doc(v: Any) -> Dict[str, Any]:
    """JSON-safe form of one disabling-condition violation.

    Duck-typed over :class:`repro.transforms.base.Violation` so this
    module needs no import from the transformation layer.
    """
    doc: Dict[str, Any] = {"condition": getattr(v, "condition", str(v))}
    code = getattr(v, "code", "")
    if code:
        doc["code"] = code
    action = getattr(v, "action_id", None)
    if action is not None:
        doc["cause_action"] = action
    stamp = getattr(v, "stamp", None)
    if stamp is not None:
        doc["cause_stamp"] = stamp
    witness = getattr(v, "witness", None)
    if witness:
        doc["witness"] = dict(witness)
    return doc


@dataclass
class Verdict:
    """One safety or reversibility decision about one record."""

    #: ``"safety"`` or ``"reversibility"``.
    check: str
    #: the order stamp of the record that was checked.
    stamp: int
    #: its transformation name.
    name: str
    ok: bool
    #: the disabling conditions that fired (empty when ``ok``); each is
    #: a :func:`_violation_doc` dict — condition text, stable ``code``,
    #: causing action/stamp, and the witnessing pattern element.
    violations: List[Dict[str, Any]] = field(default_factory=list)
    #: the stamp whose undo prompted this re-check (``None`` for a
    #: standalone check outside a cascade).
    triggered_by: Optional[int] = None

    def to_doc(self) -> Dict[str, Any]:
        """JSON-safe form (omits empty violations / absent trigger)."""
        doc: Dict[str, Any] = {"check": self.check, "stamp": self.stamp,
                               "name": self.name, "ok": self.ok}
        if self.violations:
            doc["violations"] = [dict(v) for v in self.violations]
        if self.triggered_by is not None:
            doc["triggered_by"] = self.triggered_by
        return doc

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "Verdict":
        return cls(check=doc["check"], stamp=doc["stamp"], name=doc["name"],
                   ok=bool(doc["ok"]),
                   violations=[dict(v) for v in doc.get("violations", [])],
                   triggered_by=doc.get("triggered_by"))

    def describe(self) -> str:
        """One-line human rendering."""
        if self.ok:
            state = "safe" if self.check == "safety" else "reversible"
            return f"{self.check} of t{self.stamp} ({self.name}): {state}"
        v = self.violations[0] if self.violations else {}
        code = f" [{v['code']}]" if v.get("code") else ""
        cause = f" caused by t{v['cause_stamp']}" \
            if v.get("cause_stamp") is not None else ""
        return (f"{self.check} of t{self.stamp} ({self.name}): "
                f"{'UNSAFE' if self.check == 'safety' else 'BLOCKED'} — "
                f"{v.get('condition', '?')}{code}{cause}")


def safety_verdict(record: Any, result: Any,
                   triggered_by: Optional[int] = None) -> Verdict:
    """Structured verdict from a record + its ``check_safety`` result."""
    return Verdict(check="safety", stamp=record.stamp, name=record.name,
                   ok=bool(result.safe),
                   violations=[_violation_doc(v)
                               for v in getattr(result, "violations", [])],
                   triggered_by=triggered_by)


def reversibility_verdict(record: Any, result: Any,
                          triggered_by: Optional[int] = None) -> Verdict:
    """Structured verdict from a ``check_reversibility`` result."""
    return Verdict(check="reversibility", stamp=record.stamp,
                   name=record.name, ok=bool(result.reversible),
                   violations=[_violation_doc(v)
                               for v in getattr(result, "violations", [])],
                   triggered_by=triggered_by)


# ---------------------------------------------------------------------------
# The causal provenance tree
# ---------------------------------------------------------------------------


@dataclass
class ProvenanceNode:
    """One node of the causal tree a cascaded undo builds.

    ``kind`` is one of

    ``"undo"``
        a record whose inverse actions ran; ``role`` says why —
        ``"target"`` (the user asked), ``"affecting"`` (peeled first so
        the parent became reversible), ``"affected"`` (rippled because
        the parent's removal broke its safety), ``"collateral"`` (in the
        way of a LIFO peel).  ``verdict`` is the decision that *forced*
        the undo (``None`` for the target).
    ``"check"``
        one safety/reversibility re-check; ``verdict`` is its outcome.
    ``"skip"``
        a candidate the cascade did not re-check; ``reason`` is
        ``"table4-heuristic"`` or ``"outside-region"``.
    """

    kind: str
    stamp: Optional[int] = None
    name: Optional[str] = None
    role: Optional[str] = None
    reason: Optional[str] = None
    detail: str = ""
    verdict: Optional[Verdict] = None
    children: List["ProvenanceNode"] = field(default_factory=list)

    def add(self, node: "ProvenanceNode") -> "ProvenanceNode":
        """Append and return a child node."""
        self.children.append(node)
        return node

    def walk(self) -> Iterator["ProvenanceNode"]:
        """This node, then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def undone_stamps(self) -> List[int]:
        """Stamps of every ``undo`` node, in tree (= commit) order."""
        return [n.stamp for n in self.walk()
                if n.kind == "undo" and n.stamp is not None]

    def to_doc(self) -> Dict[str, Any]:
        """JSON-safe form of the subtree (None fields omitted)."""
        doc: Dict[str, Any] = {"kind": self.kind}
        for key in ("stamp", "name", "role", "reason"):
            value = getattr(self, key)
            if value is not None:
                doc[key] = value
        if self.detail:
            doc["detail"] = self.detail
        if self.verdict is not None:
            doc["verdict"] = self.verdict.to_doc()
        if self.children:
            doc["children"] = [c.to_doc() for c in self.children]
        return doc

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "ProvenanceNode":
        verdict = doc.get("verdict")
        return cls(kind=doc["kind"], stamp=doc.get("stamp"),
                   name=doc.get("name"), role=doc.get("role"),
                   reason=doc.get("reason"), detail=doc.get("detail", ""),
                   verdict=Verdict.from_doc(verdict) if verdict else None,
                   children=[cls.from_doc(c)
                             for c in doc.get("children", [])])

    def label(self) -> str:
        """Compact one-line rendering of this node alone."""
        if self.kind == "undo":
            forced = f" — {self.verdict.describe()}" if self.verdict else ""
            return f"undo t{self.stamp} ({self.name}, {self.role}){forced}"
        if self.kind == "check":
            return self.verdict.describe() if self.verdict else "check"
        if self.kind == "skip":
            detail = f": {self.detail}" if self.detail else ""
            return (f"skip t{self.stamp} ({self.name}) "
                    f"[{self.reason}]{detail}")
        return self.kind  # pragma: no cover - closed kind vocabulary

    def describe(self, indent: int = 0) -> str:
        """Multi-line indented rendering of the whole tree."""
        lines = ["  " * indent + self.label()]
        for child in self.children:
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)


def provenance_to_dot(trees: List[Dict[str, Any]],
                      title: str = "provenance") -> str:
    """Render provenance trees (doc form) as one DOT digraph.

    Undo nodes are boxes, checks are ellipses, skips are dashed; the
    edge from a blocked check to the undo it forced is implicit in the
    tree shape (the forced undo is the check's sibling carrying the
    same verdict), so the graph simply mirrors parent → child.
    """
    lines = [f'digraph "{title}" {{', "  rankdir=TB;",
             '  node [fontname="monospace", fontsize=10];']
    counter = [0]

    def emit(doc: Dict[str, Any], parent: Optional[str]) -> None:
        nid = f"n{counter[0]}"
        counter[0] += 1
        node = ProvenanceNode.from_doc(doc)
        text = node.label().replace("\\", "\\\\").replace('"', '\\"')
        shape = {"undo": "box", "check": "ellipse"}.get(node.kind, "note")
        style = ', style=dashed' if node.kind == "skip" else ""
        lines.append(f'  {nid} [label="{text}", shape={shape}{style}];')
        if parent is not None:
            lines.append(f"  {parent} -> {nid};")
        for child in doc.get("children", []):
            emit(child, nid)

    for k, tree in enumerate(trees):
        lines.append(f"  subgraph cluster_{k} {{")
        root_at = len(lines)
        emit(tree, None)
        lines.insert(root_at, f'    label="entry {k}";')
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# The audit log
# ---------------------------------------------------------------------------


def command_audit(command: Any) -> Dict[str, Any]:
    """The audit payload of one executed command (no seq/schema yet).

    Duck-typed over :class:`repro.core.commands.Command`: ``op``,
    ``failed``, the order ``stamp`` where the command carries one, the
    ``undone`` stamps of undo commands, the provenance tree the undo
    engines attached, and — for batches — one nested payload per
    executed sub-command.
    """
    # keyword syntax deliberately: this is the audit payload, not the
    # journal encoding (scripts/check_command_dicts.py enforces that
    # only core/commands.py builds string-keyed command dicts)
    doc: Dict[str, Any] = dict(
        op=command.op,
        status="failed" if getattr(command, "failed", False) else "ok")
    stamp = getattr(command, "stamp", None)
    if isinstance(stamp, int):
        doc["stamp"] = stamp
    undone = getattr(command, "undone", None)
    if undone is not None:
        doc["undone"] = list(undone)
    provenance = getattr(command, "provenance", None)
    if provenance is not None:
        doc["provenance"] = provenance
    if command.op == "batch":
        doc["commands"] = [command_audit(sub)
                           for sub in getattr(command, "commands", [])]
    return doc


def audit_entry(command: Any, seq: int) -> Dict[str, Any]:
    """One full ``audit.jsonl`` entry for a journaled command."""
    doc = {"schema": AUDIT_SCHEMA, "seq": seq}
    doc.update(command_audit(command))
    return doc


def read_audit(path: str) -> List[Dict[str, Any]]:
    """Load an ``audit.jsonl`` file (torn/garbage lines are skipped).

    Like :func:`repro.obs.trace.read_trace`: the audit log is evidence,
    not a recovery source, so a torn tail loses those lines only —
    :func:`repro.obs.check.audit_roundtrip` is what notices a gap.
    """
    import json

    if not os.path.exists(path):
        return []
    out: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            try:
                doc = json.loads(line)
            except ValueError:
                continue
            if isinstance(doc, dict) and "seq" in doc and "op" in doc:
                out.append(doc)
    return out


def entry_trees(entry: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Every provenance tree (doc form) one audit entry carries."""
    out: List[Dict[str, Any]] = []
    if entry.get("provenance"):
        out.append(entry["provenance"])
    for sub in entry.get("commands", []):
        if sub.get("provenance"):
            out.append(sub["provenance"])
    return out


# ---------------------------------------------------------------------------
# Explanation: one stamp's story, live state + audit trail
# ---------------------------------------------------------------------------


def stamp_events(entries: List[Dict[str, Any]],
                 stamp: int) -> List[Dict[str, Any]]:
    """Every audit event that touches ``stamp``, oldest first.

    Three ways an entry can touch a stamp: a provenance node *about* it
    (it was undone, re-checked, or skipped), a verdict *blaming* it (one
    of its actions fired a disabling condition elsewhere), or the entry
    being the command that created/targeted it.
    """
    events: List[Dict[str, Any]] = []
    for entry in entries:
        seq, op = entry.get("seq"), entry.get("op")
        if entry.get("stamp") == stamp and op in ("apply", "edit"):
            events.append(dict(
                seq=seq, op=op, kind="command",
                text=f"{op} created t{stamp}"
                + (" (failed)" if entry.get("status") == "failed"
                   else "")))
        for tree in entry_trees(entry):
            root = ProvenanceNode.from_doc(tree)
            within = f"undo t{root.stamp}" if root.stamp is not None else op
            for node in root.walk():
                if node.stamp == stamp and node.kind in ("undo", "skip",
                                                         "check"):
                    events.append(dict(
                        seq=seq, op=op, kind=node.kind, role=node.role,
                        reason=node.reason, within=within,
                        text=node.label(),
                        verdict=node.verdict.to_doc()
                        if node.verdict else None))
                if node.verdict is not None and node.kind == "check":
                    for v in node.verdict.violations:
                        if v.get("cause_stamp") == stamp \
                                and node.stamp != stamp:
                            events.append(dict(
                                seq=seq, op=op, kind="blamed",
                                within=within,
                                text=(f"t{stamp} blamed: "
                                      f"{node.verdict.describe()}")))
    return events


def stamp_trees(entries: List[Dict[str, Any]],
                stamp: int) -> List[Dict[str, Any]]:
    """Every audited provenance tree (doc form) that mentions ``stamp``."""
    out: List[Dict[str, Any]] = []
    for entry in entries:
        for tree in entry_trees(entry):
            if any(node.stamp == stamp
                   for node in ProvenanceNode.from_doc(tree).walk()):
                out.append(tree)
    return out


def explain_doc(live: Optional[Dict[str, Any]],
                entries: List[Dict[str, Any]],
                stamp: int) -> Dict[str, Any]:
    """The full explanation document for one stamp.

    ``live`` is :meth:`repro.core.engine.TransformationEngine.explain`
    output (current verdicts), ``entries`` the session's audit log.
    """
    return {"stamp": stamp, "live": live,
            "history": stamp_events(entries, stamp)}


def render_explanation(doc: Dict[str, Any]) -> str:
    """Human-readable rendering of an :func:`explain_doc` document."""
    stamp = doc["stamp"]
    lines: List[str] = []
    live = doc.get("live")
    if live is not None:
        state = "active" if live.get("active") else "inactive (undone)"
        if live.get("is_edit"):
            state += ", user edit"
        lines.append(f"t{stamp} {live.get('name', '?')} — {state}")
        for key in ("safety", "reversibility"):
            verdict = live.get(key)
            if verdict is not None:
                lines.append("  now: "
                             + Verdict.from_doc(verdict).describe())
    else:
        lines.append(f"t{stamp} — no live record")
    history = doc.get("history", [])
    if history:
        lines.append("audit trail:")
        for ev in history:
            where = f" (during {ev['within']})" if ev.get("within") else ""
            lines.append(f"  seq {ev['seq']}{where}: {ev['text']}")
    else:
        lines.append("audit trail: (no recorded events)")
    return "\n".join(lines)
