"""A stdlib-only sampling profiler with span and request attribution.

Tracing (:mod:`repro.obs.trace`) answers "what did this command do";
metrics (:mod:`repro.obs.metrics`) answer "what has this process done";
neither answers the ROADMAP's question — *where does the CPU time go* —
without which "as fast as the hardware allows" is a guess.  This module
closes that gap the production way: a background daemon thread walks
``sys._current_frames()`` at a configurable rate and folds each
thread's stack into an in-memory table, so profiling a live server
costs a few stack walks per second instead of cProfile's per-call hook
(which multiplies the very hot path it is supposed to measure).

Design points:

* **Folded stacks** — samples accumulate as ``frame;frame;frame -> n``
  (the collapsed-stack format of Brendan Gregg's ``flamegraph.pl``),
  keyed additionally by the sampled thread's innermost span name and
  request id (read from :func:`repro.obs.trace.thread_activity`), so
  CPU time is attributable per engine phase — ``command``,
  ``journal.append``, ``journal.fsync``, ``snapshot`` — and joinable to
  ``repro collect`` request trees by request id.
* **Frame naming** — ``<module-basename>.<function>`` (``engine.execute``,
  ``dataflow.solve``): short enough to read in a flamegraph, unique
  enough to find in the tree.
* **Bounded cost, counted drops** — sampling overruns (a tick that took
  longer than the period) and distinct-stack table overflow are counted
  in :attr:`Profiler.dropped`, and an attached :attr:`drop_counter`
  (wired to ``repro_prof_dropped_total``) makes the loss visible in
  ``/metrics`` — a profiler that silently under-samples lies with
  authority.
* **A zero-cost off switch** — :data:`Profiler.disabled` mirrors
  ``Tracer.disabled``: a shared instance whose :meth:`Profiler.start`
  refuses, so plumbing a profiler through engines and servers costs an
  attribute load when profiling is off.

Overhead at the default 100 hz is asserted under the 5% tracing budget
by ``benchmarks/bench_e7_observability.py``; the arithmetic is simple —
one stack walk per live thread per 10ms, each a few microseconds.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.trace import thread_activity

__all__ = ["Profiler", "merge_folded", "parse_folded", "render_folded"]

#: frames deeper than this are truncated (a runaway recursion must not
#: make every sample arbitrarily expensive).
MAX_DEPTH = 128

#: the folded-stack root used for samples with no open span.
IDLE_ROOT = "-"


def _frame_name(frame) -> str:
    """``<module-basename>.<function>`` for one interpreter frame."""
    code = frame.f_code
    mod = os.path.splitext(os.path.basename(code.co_filename))[0]
    return f"{mod}.{code.co_name}"


class Profiler:
    """Samples every thread's stack from a background daemon thread.

    Lifecycle: :meth:`start` spawns the sampler, :meth:`stop` joins it;
    both are idempotent and report whether they changed anything.  The
    accumulated profile survives stop/start cycles until :meth:`reset`,
    so an operator can profile in windows and dump once.  Thread-safe:
    the sampler owns the table under :attr:`_lock`; readers snapshot.

    ``Profiler.disabled`` is the documented zero-cost instance
    (mirroring ``Tracer.disabled``): ``start`` refuses, every export is
    empty, and attaching it costs one attribute load.
    """

    #: the shared no-op profiler (assigned after the class body).
    disabled: "Profiler"

    def __init__(self, hz: float = 100.0, *, max_stacks: int = 10000,
                 enabled: bool = True):
        if hz <= 0:
            raise ValueError("hz must be > 0")
        self.hz = float(hz)
        self.max_stacks = max_stacks
        self.enabled = enabled
        #: samples folded into the table so far (monotonic).
        self.samples = 0
        #: samples lost — overrun ticks plus stack-table overflow.
        self.dropped = 0
        #: optional counter (anything with ``inc(n)``) incremented per
        #: dropped sample; servers wire ``repro_prof_dropped_total``.
        self.drop_counter: Optional[Any] = None
        #: profiled wall-clock seconds across every start/stop window.
        self.wall = 0.0
        #: (span, request, frames) -> sample count; "" = unattributed.
        self._stacks: Dict[Tuple[str, str, Tuple[str, ...]], int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_at = 0.0

    # -- lifecycle -----------------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the sampler thread is currently alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self, hz: Optional[float] = None) -> bool:
        """Begin sampling; returns False when disabled or already on."""
        if not self.enabled or self.running:
            return False
        if hz is not None:
            if hz <= 0:
                raise ValueError("hz must be > 0")
            self.hz = float(hz)
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(target=self._run,
                                        name="repro-profiler", daemon=True)
        self._thread.start()
        return True

    def stop(self) -> bool:
        """Stop sampling (keeps the profile); returns False when idle."""
        thread = self._thread
        if thread is None:
            return False
        self._stop.set()
        thread.join(timeout=max(1.0, 4.0 / self.hz))
        self.wall += time.perf_counter() - self._started_at
        self._thread = None
        return True

    def reset(self) -> None:
        """Drop the accumulated profile (counters keep accumulating)."""
        with self._lock:
            self._stacks.clear()
        self.wall = 0.0
        if self.running:
            self._started_at = time.perf_counter()

    # -- the sampler thread --------------------------------------------------

    def _run(self) -> None:
        own = threading.get_ident()
        period = 1.0 / self.hz
        next_tick = time.perf_counter() + period
        while not self._stop.wait(max(0.0, next_tick -
                                      time.perf_counter())):
            self._sample_once(own)
            next_tick += period
            now = time.perf_counter()
            if next_tick <= now:
                # the tick overran its period: count the missed samples
                # rather than bursting to catch up
                missed = int((now - next_tick) / period) + 1
                self._note_drops(missed)
                next_tick = now + period

    def _sample_once(self, own: int) -> None:
        activity = thread_activity()
        for ident, frame in sys._current_frames().items():
            if ident == own:
                continue
            chain: List[str] = []
            f = frame
            while f is not None and len(chain) < MAX_DEPTH:
                chain.append(_frame_name(f))
                f = f.f_back
            chain.reverse()
            span, request = activity.get(ident, (None, None))
            key = (span or "", request or "", tuple(chain))
            with self._lock:
                if key in self._stacks:
                    self._stacks[key] += 1
                    self.samples += 1
                elif len(self._stacks) < self.max_stacks:
                    self._stacks[key] = 1
                    self.samples += 1
                else:
                    self._note_drops(1, locked=True)

    def _note_drops(self, n: int, locked: bool = False) -> None:
        if locked:
            self.dropped += n
        else:
            with self._lock:
                self.dropped += n
        counter = self.drop_counter
        if counter is not None:
            try:
                counter.inc(n)
            except Exception:
                pass  # observability must not break the sampler

    # -- exports -------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe dump: config, counters, and every attributed stack.

        ``stacks`` entries carry ``span``/``request`` (``None`` when the
        sampled thread had no open span / request context), the frame
        chain root-first, and the sample count.
        """
        with self._lock:
            items = sorted(self._stacks.items())
            samples, dropped = self.samples, self.dropped
        wall = self.wall
        if self.running:
            wall += time.perf_counter() - self._started_at
        return {"hz": self.hz, "running": self.running,
                "samples": samples, "dropped": dropped,
                "wall_s": round(wall, 6),
                "stacks": [{"span": span or None,
                            "request": request or None,
                            "frames": list(frames), "count": count}
                           for (span, request, frames), count in items]}

    def folded(self) -> str:
        """Collapsed-stack text (``flamegraph.pl`` input format).

        One line per distinct stack, ``root;frame;...;leaf count``; the
        root frame is the span name the sample was attributed to
        (:data:`IDLE_ROOT` when none), so a flamegraph groups CPU time
        by engine phase before it fans out into frames.  Request-level
        attribution stays in :meth:`snapshot` — per-request roots would
        explode folded-line cardinality on a long-running server.
        """
        counts: Dict[str, int] = {}
        with self._lock:
            items = list(self._stacks.items())
        for (span, _request, frames), count in items:
            line = ";".join([span or IDLE_ROOT, *frames])
            counts[line] = counts.get(line, 0) + count
        return render_folded(counts)

    def table(self) -> List[Dict[str, Any]]:
        """Per-frame self/cumulative sample table, hottest self first.

        ``self`` counts samples where the frame was the leaf;
        ``cum`` counts samples where it appeared anywhere (once per
        sample, so recursion does not double-credit).  ``*_s`` converts
        to estimated seconds at the sampling rate.
        """
        self_c: Dict[str, int] = {}
        cum_c: Dict[str, int] = {}
        with self._lock:
            items = list(self._stacks.items())
        for (_span, _request, frames), count in items:
            if not frames:
                continue
            leaf = frames[-1]
            self_c[leaf] = self_c.get(leaf, 0) + count
            for frame in set(frames):
                cum_c[frame] = cum_c.get(frame, 0) + count
        rows = [{"frame": frame, "self": self_c.get(frame, 0),
                 "cum": cum, "self_s": round(self_c.get(frame, 0) /
                                             self.hz, 4),
                 "cum_s": round(cum / self.hz, 4)}
                for frame, cum in cum_c.items()]
        rows.sort(key=lambda r: (-r["self"], -r["cum"], r["frame"]))
        return rows


Profiler.disabled = Profiler(enabled=False)


# -- folded-stack text --------------------------------------------------------
#
# The sharded router merges per-worker dumps by summing identical
# lines; these three helpers are that wire format's parser/renderer.

def parse_folded(text: str) -> Dict[str, int]:
    """Parse collapsed-stack text into ``stack -> count`` (lenient:
    lines without a trailing integer count are skipped)."""
    counts: Dict[str, int] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack, _, tail = line.rpartition(" ")
        if not stack or not tail.isdigit():
            continue
        counts[stack] = counts.get(stack, 0) + int(tail)
    return counts


def render_folded(counts: Dict[str, int]) -> str:
    """Render ``stack -> count`` as sorted collapsed-stack text."""
    return "\n".join(f"{stack} {count}"
                     for stack, count in sorted(counts.items()))


def merge_folded(texts: Sequence[str]) -> str:
    """Merge collapsed-stack dumps by summing identical stacks.

    How ``_ prof dump`` and ``/pprof`` combine per-shard profiles: the
    folded line is already an aggregate, so cross-process merge is
    integer addition — the same shape as the bucket-wise histogram
    merge in :func:`repro.obs.metrics.merge_histogram_docs`.
    """
    merged: Dict[str, int] = {}
    for text in texts:
        for stack, count in parse_folded(text).items():
            merged[stack] = merged.get(stack, 0) + count
    return render_folded(merged)
