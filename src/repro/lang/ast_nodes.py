"""AST node definitions for the structured loop language.

Design notes
------------

The undo machinery of the paper requires *stable statement identity*:
a ``Move`` relocates the same statement object, a ``Delete`` detaches it
(but the history still refers to it), a ``Copy`` creates a clone with a
fresh identity, and a ``Modify`` swaps an expression subtree *in place*
inside a statement while the statement identity is preserved.

We therefore give every statement a small integer ``sid`` that is unique
within its :class:`Program` for the whole lifetime of the program,
including statements that are currently detached (deleted).  Expressions
do not carry identity; they are addressed by *paths* relative to their
owning statement (see :func:`expr_at` / :func:`replace_expr`), which is
how ``Modify`` annotations are recorded.

Structural mutation of a program must go through the :class:`Program`
methods (``insert`` / ``detach`` / ``move_stmt``) so that the sid index
and parent map stay consistent; the primitive actions in
:mod:`repro.core.actions` are the only intended callers.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

#: Binary operators understood by the language (and the interpreter).
BINARY_OPS = ("+", "-", "*", "/", "<", "<=", ">", ">=", "==", "!=", "and", "or")

#: Unary operators.
UNARY_OPS = ("-", "not")


class Expr:
    """Base class for expression tree nodes.

    Expressions are value-like: they compare by structure via
    :func:`exprs_equal` and are duplicated with :meth:`clone`.  They carry
    no identity of their own; the owning statement plus a path addresses
    any subtree (see :func:`expr_at`).

    Every node carries a memoized structural content hash in ``_h``
    (computed lazily by :func:`expr_hash`).  Mutators — only
    :func:`replace_expr` mutates expression structure — clear ``_h``
    along the spine of the mutation; everything off the spine keeps its
    cached digest.
    """

    __slots__ = ("_h",)

    def clone(self) -> "Expr":
        """Return a deep copy of this expression subtree."""
        raise NotImplementedError

    def children(self) -> Sequence[Tuple[str, "Expr"]]:
        """Return ``(edge_name, child)`` pairs in evaluation order."""
        return ()


class Const(Expr):
    """A numeric literal."""

    __slots__ = ("value",)

    def __init__(self, value: Union[int, float]):
        self._h: Optional[str] = None
        self.value = value

    def clone(self) -> "Const":
        return intern_const(self.value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Const({self.value!r})"


class VarRef(Expr):
    """A reference to a scalar variable (or a loop index)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self._h: Optional[str] = None
        self.name = name

    def clone(self) -> "VarRef":
        return intern_var(self.name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VarRef({self.name!r})"


class ArrayRef(Expr):
    """A subscripted array reference ``name(sub1, sub2, ...)``."""

    __slots__ = ("name", "subscripts")

    def __init__(self, name: str, subscripts: Sequence[Expr]):
        self._h: Optional[str] = None
        self.name = name
        self.subscripts: List[Expr] = list(subscripts)

    def clone(self) -> "ArrayRef":
        return ArrayRef(self.name, [s.clone() for s in self.subscripts])

    def children(self) -> Sequence[Tuple[str, Expr]]:
        return [(f"sub{k}", s) for k, s in enumerate(self.subscripts)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ArrayRef({self.name!r}, {self.subscripts!r})"


class BinOp(Expr):
    """A binary operation ``left op right``."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in BINARY_OPS:
            raise ValueError(f"unknown binary operator: {op!r}")
        self._h: Optional[str] = None
        self.op = op
        self.left = left
        self.right = right

    def clone(self) -> "BinOp":
        return BinOp(self.op, self.left.clone(), self.right.clone())

    def children(self) -> Sequence[Tuple[str, Expr]]:
        return [("l", self.left), ("r", self.right)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BinOp({self.op!r}, {self.left!r}, {self.right!r})"


class UnaryOp(Expr):
    """A unary operation ``op operand``."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr):
        if op not in UNARY_OPS:
            raise ValueError(f"unknown unary operator: {op!r}")
        self._h: Optional[str] = None
        self.op = op
        self.operand = operand

    def clone(self) -> "UnaryOp":
        return UnaryOp(self.op, self.operand.clone())

    def children(self) -> Sequence[Tuple[str, Expr]]:
        return [("e", self.operand)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"UnaryOp({self.op!r}, {self.operand!r})"


# ---------------------------------------------------------------------------
# Leaf interning
# ---------------------------------------------------------------------------
#
# Leaves are immutable after construction (the only structural mutator,
# ``replace_expr``, rewrites *parent* links, never ``Const.value`` or
# ``VarRef.name``), so identical leaves can share one object.  Cloning a
# subtree after CPP/CSE then shares every literal and variable reference
# instead of reallocating them, and each shared leaf memoizes its content
# hash exactly once.  Interior nodes (``BinOp``/``UnaryOp``/``ArrayRef``)
# are mutated in place by ``replace_expr`` and must never be shared.

#: Bound on each intern table; programs hold a small vocabulary of
#: literals/names, but a runaway workload must not leak memory.
_INTERN_MAX = 4096

_CONST_INTERN: Dict[Tuple[str, Union[int, float]], Const] = {}
_VAR_INTERN: Dict[str, VarRef] = {}


def intern_const(value: Union[int, float]) -> Const:
    """A shared :class:`Const` for ``value`` (type-distinguishing key)."""
    key = (type(value).__name__, value)
    e = _CONST_INTERN.get(key)
    if e is None:
        e = Const(value)
        if len(_CONST_INTERN) < _INTERN_MAX:
            _CONST_INTERN[key] = e
    return e


def intern_var(name: str) -> VarRef:
    """A shared :class:`VarRef` for ``name``."""
    e = _VAR_INTERN.get(name)
    if e is None:
        e = VarRef(name)
        if len(_VAR_INTERN) < _INTERN_MAX:
            _VAR_INTERN[name] = e
    return e


def intern_leaf(e: Expr) -> Expr:
    """Return the interned equivalent of ``e`` when it is a leaf."""
    if type(e) is Const:
        return intern_const(e.value)
    if type(e) is VarRef:
        return intern_var(e.name)
    return e


def intern_stats() -> Dict[str, int]:
    """Current sizes of the leaf intern tables (for benchmarks)."""
    return {"consts": len(_CONST_INTERN), "vars": len(_VAR_INTERN)}


# ---------------------------------------------------------------------------
# Structural content hashes
# ---------------------------------------------------------------------------

#: Field separator for hash preimages; cannot occur in operator names,
#: identifiers, or ``repr`` of numeric literals.
_HSEP = "\x1f"


def _hash_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _expr_hash(e: Expr, cache: bool) -> str:
    if cache:
        h = e._h
        if h is not None:
            return h
    if isinstance(e, Const):
        h = _hash_text(f"C{_HSEP}{type(e.value).__name__}{_HSEP}{e.value!r}")
    elif isinstance(e, VarRef):
        h = _hash_text(f"V{_HSEP}{e.name}")
    elif isinstance(e, ArrayRef):
        subs = _HSEP.join(_expr_hash(s, cache) for s in e.subscripts)
        h = _hash_text(f"A{_HSEP}{e.name}{_HSEP}{subs}")
    elif isinstance(e, BinOp):
        h = _hash_text(f"B{_HSEP}{e.op}{_HSEP}{_expr_hash(e.left, cache)}"
                       f"{_HSEP}{_expr_hash(e.right, cache)}")
    elif isinstance(e, UnaryOp):
        h = _hash_text(f"U{_HSEP}{e.op}{_HSEP}{_expr_hash(e.operand, cache)}")
    else:
        raise TypeError(f"unknown expression node: {e!r}")
    if cache:
        e._h = h
    return h


def expr_hash(e: Expr) -> str:
    """Memoized structural sha256 of an expression subtree.

    The preimage distinguishes node types and literal types (``1`` vs
    ``1.0`` vs ``True``), so two expressions hash equal iff
    :func:`exprs_equal` holds.
    """
    return _expr_hash(e, True)


def expr_hash_fresh(e: Expr) -> str:
    """Like :func:`expr_hash` but ignores (and never writes) the memo.

    Used by the from-scratch fingerprint to *verify* the invalidation
    discipline: if a cached hash went stale, the fresh and memoized
    digests diverge.
    """
    return _expr_hash(e, False)


def exprs_equal(a: Optional[Expr], b: Optional[Expr]) -> bool:
    """Structural equality of two expression trees."""
    if a is None or b is None:
        return a is b
    if type(a) is not type(b):
        return False
    if isinstance(a, Const):
        return a.value == b.value  # type: ignore[union-attr]
    if isinstance(a, VarRef):
        return a.name == b.name  # type: ignore[union-attr]
    if isinstance(a, ArrayRef):
        assert isinstance(b, ArrayRef)
        return a.name == b.name and len(a.subscripts) == len(b.subscripts) and all(
            exprs_equal(x, y) for x, y in zip(a.subscripts, b.subscripts)
        )
    if isinstance(a, BinOp):
        assert isinstance(b, BinOp)
        return a.op == b.op and exprs_equal(a.left, b.left) and exprs_equal(a.right, b.right)
    if isinstance(a, UnaryOp):
        assert isinstance(b, UnaryOp)
        return a.op == b.op and exprs_equal(a.operand, b.operand)
    raise TypeError(f"unknown expression node: {a!r}")


def expr_vars(e: Expr) -> Set[str]:
    """All scalar variable names referenced in ``e`` (subscripts included).

    Array names are *not* included; use :func:`expr_arrays` for those.
    """
    out: Set[str] = set()
    stack = [e]
    while stack:
        n = stack.pop()
        if isinstance(n, VarRef):
            out.add(n.name)
        elif isinstance(n, ArrayRef):
            stack.extend(n.subscripts)
        else:
            stack.extend(c for _, c in n.children())
    return out


def expr_arrays(e: Expr) -> Set[str]:
    """All array names referenced in ``e``."""
    out: Set[str] = set()
    stack = [e]
    while stack:
        n = stack.pop()
        if isinstance(n, ArrayRef):
            out.add(n.name)
            stack.extend(n.subscripts)
        else:
            stack.extend(c for _, c in n.children())
    return out


def walk_expr(e: Expr, _path: Tuple[str, ...] = ()) -> Iterator[Tuple[Tuple[str, ...], Expr]]:
    """Yield ``(path, subtree)`` for every subtree of ``e`` in preorder.

    Paths are tuples of edge names relative to ``e`` itself; the root is
    yielded with the empty path.
    """
    yield _path, e
    for name, child in e.children():
        yield from walk_expr(child, _path + (name,))


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt:
    """Base class for statements.

    Attributes
    ----------
    sid:
        Stable statement id, unique within the owning :class:`Program`
        (assigned by the program when the statement is registered; ``-1``
        for unregistered nodes).
    label:
        Optional source line label used for display, mirroring the labelled
        statements of the paper's Figure 1.
    """

    __slots__ = ("sid", "label", "_h")

    def __init__(self) -> None:
        self.sid: int = -1
        self.label: Optional[int] = None
        #: memoized subtree content hash (see :func:`stmt_hash`); cleared
        #: along the mutation spine by ``replace_expr`` and the
        #: :class:`Program` mutators.
        self._h: Optional[str] = None

    # -- expression slots ---------------------------------------------------

    def expr_slots(self) -> Sequence[Tuple[str, Expr]]:
        """Top-level ``(slot_name, expression)`` pairs of this statement."""
        return ()

    def set_expr_slot(self, slot: str, e: Expr) -> None:
        """Replace the whole expression in ``slot`` with ``e``."""
        raise KeyError(slot)

    # -- structure ----------------------------------------------------------

    def body_slots(self) -> Sequence[str]:
        """Names of the statement-list slots this statement owns."""
        return ()

    def get_body(self, slot: str) -> List["Stmt"]:
        """The statement list behind body slot ``slot``."""
        raise KeyError(slot)

    def clone_shallow(self) -> "Stmt":
        """Clone this statement (deep for expressions, empty bodies)."""
        raise NotImplementedError


class Assign(Stmt):
    """``target = expr`` where target is a :class:`VarRef` or :class:`ArrayRef`."""

    __slots__ = ("target", "expr")

    def __init__(self, target: Expr, expr: Expr):
        super().__init__()
        if not isinstance(target, (VarRef, ArrayRef)):
            raise TypeError("assignment target must be a variable or array reference")
        self.target = target
        self.expr = expr

    def expr_slots(self) -> Sequence[Tuple[str, Expr]]:
        return [("target", self.target), ("expr", self.expr)]

    def set_expr_slot(self, slot: str, e: Expr) -> None:
        if slot == "target":
            if not isinstance(e, (VarRef, ArrayRef)):
                raise TypeError("assignment target must be a variable or array reference")
            self.target = e
        elif slot == "expr":
            self.expr = e
        else:
            raise KeyError(slot)

    def clone_shallow(self) -> "Assign":
        return Assign(self.target.clone(), self.expr.clone())


class Loop(Stmt):
    """A ``do var = lower, upper[, step]`` counted loop."""

    __slots__ = ("var", "lower", "upper", "step", "body")

    def __init__(self, var: str, lower: Expr, upper: Expr, step: Optional[Expr] = None,
                 body: Optional[List[Stmt]] = None):
        super().__init__()
        self.var = var
        self.lower = lower
        self.upper = upper
        self.step = step if step is not None else Const(1)
        self.body: List[Stmt] = body if body is not None else []

    def expr_slots(self) -> Sequence[Tuple[str, Expr]]:
        return [("lower", self.lower), ("upper", self.upper), ("step", self.step)]

    def set_expr_slot(self, slot: str, e: Expr) -> None:
        if slot == "lower":
            self.lower = e
        elif slot == "upper":
            self.upper = e
        elif slot == "step":
            self.step = e
        else:
            raise KeyError(slot)

    def body_slots(self) -> Sequence[str]:
        return ("body",)

    def get_body(self, slot: str) -> List[Stmt]:
        """The statement list behind body slot ``slot``."""
        if slot != "body":
            raise KeyError(slot)
        return self.body

    def clone_shallow(self) -> "Loop":
        return Loop(self.var, self.lower.clone(), self.upper.clone(), self.step.clone(), [])

    def header_equal(self, other: "Loop") -> bool:
        """True when both loops have identical ``var``/bounds/step."""
        return (self.var == other.var and exprs_equal(self.lower, other.lower)
                and exprs_equal(self.upper, other.upper) and exprs_equal(self.step, other.step))


class ParLoop(Loop):
    """A ``doall var = lower, upper[, step]`` parallel loop.

    Iterations are declared independent: the scheduled interpreter
    (:mod:`repro.par.interp`) runs one task per iteration under an
    explicit schedule, and the dependence analysis classifies any
    loop-carried pair at this level as a *violation* rather than an
    ordering edge (:meth:`repro.analysis.depend.DependenceGraph.par_violations`).
    Under the sequential interpreter a DOALL runs in iteration order —
    its canonical schedule — so a race-free DOALL is trace-equivalent to
    the sequential loop it was parallelized from.

    ``ParLoop`` subclasses :class:`Loop` deliberately: enclosing-loop
    chains, direction vectors, header specs and the CFG all treat it as
    a counted loop.  Exact-type checks (``type(s) is Loop``) keep the
    sequential loop transformations from matching it where that matters.
    """

    __slots__ = ()

    def clone_shallow(self) -> "ParLoop":
        return ParLoop(self.var, self.lower.clone(), self.upper.clone(),
                       self.step.clone(), [])


class ParSections(Stmt):
    """``parbegin`` … ``parend``: a fixed set of parallel sections.

    Each section is a statement list; sections are declared independent
    of each other (the scheduled interpreter runs one task per section).
    Body slots are ``sec0`` … ``sec<n-1>`` so the container model, the
    validator and snapshots handle sections like any other nested body.
    """

    __slots__ = ("sections",)

    def __init__(self, sections: Optional[List[List["Stmt"]]] = None):
        super().__init__()
        self.sections: List[List[Stmt]] = \
            sections if sections is not None else []

    def expr_slots(self) -> Sequence[Tuple[str, Expr]]:
        return []

    def set_expr_slot(self, slot: str, e: Expr) -> None:
        raise KeyError(slot)

    def body_slots(self) -> Sequence[str]:
        return tuple(f"sec{i}" for i in range(len(self.sections)))

    def get_body(self, slot: str) -> List["Stmt"]:
        """The statement list behind body slot ``slot``."""
        if slot.startswith("sec"):
            try:
                idx = int(slot[3:])
            except ValueError:
                raise KeyError(slot) from None
            if 0 <= idx < len(self.sections):
                return self.sections[idx]
        raise KeyError(slot)

    def clone_shallow(self) -> "ParSections":
        # the clone must keep the section count: copy machinery iterates
        # the original's body slots and fills the clone's lists
        return ParSections([[] for _ in self.sections])


class IfStmt(Stmt):
    """``if (cond) then ... [else ...] endif``."""

    __slots__ = ("cond", "then_body", "else_body")

    def __init__(self, cond: Expr, then_body: Optional[List[Stmt]] = None,
                 else_body: Optional[List[Stmt]] = None):
        super().__init__()
        self.cond = cond
        self.then_body: List[Stmt] = then_body if then_body is not None else []
        self.else_body: List[Stmt] = else_body if else_body is not None else []

    def expr_slots(self) -> Sequence[Tuple[str, Expr]]:
        return [("cond", self.cond)]

    def set_expr_slot(self, slot: str, e: Expr) -> None:
        if slot == "cond":
            self.cond = e
        else:
            raise KeyError(slot)

    def body_slots(self) -> Sequence[str]:
        return ("then", "else")

    def get_body(self, slot: str) -> List[Stmt]:
        """The statement list behind body slot ``slot``."""
        if slot == "then":
            return self.then_body
        if slot == "else":
            return self.else_body
        raise KeyError(slot)

    def clone_shallow(self) -> "IfStmt":
        return IfStmt(self.cond.clone(), [], [])


class ReadStmt(Stmt):
    """``read target`` — consumes one value from the input stream.

    I/O statements matter because the paper's legality rule (§4.2) forbids
    transformations from reordering I/O; the dependence analysis treats
    every pair of I/O statements as ordered.
    """

    __slots__ = ("target",)

    def __init__(self, target: Expr):
        super().__init__()
        if not isinstance(target, (VarRef, ArrayRef)):
            raise TypeError("read target must be a variable or array reference")
        self.target = target

    def expr_slots(self) -> Sequence[Tuple[str, Expr]]:
        return [("target", self.target)]

    def set_expr_slot(self, slot: str, e: Expr) -> None:
        if slot == "target":
            self.target = e
        else:
            raise KeyError(slot)

    def clone_shallow(self) -> "ReadStmt":
        return ReadStmt(self.target.clone())


class WriteStmt(Stmt):
    """``write expr`` — appends one value to the output trace."""

    __slots__ = ("expr",)

    def __init__(self, expr: Expr):
        super().__init__()
        self.expr = expr

    def expr_slots(self) -> Sequence[Tuple[str, Expr]]:
        return [("expr", self.expr)]

    def set_expr_slot(self, slot: str, e: Expr) -> None:
        if slot == "expr":
            self.expr = e
        else:
            raise KeyError(slot)

    def clone_shallow(self) -> "WriteStmt":
        return WriteStmt(self.expr.clone())


# ---------------------------------------------------------------------------
# Expression paths relative to a statement
# ---------------------------------------------------------------------------

#: An expression path: first element is the statement slot name, the rest
#: are expression edge names (``l``/``r``/``e``/``sub<k>``).
ExprPath = Tuple[str, ...]


def expr_at(stmt: Stmt, path: ExprPath) -> Expr:
    """Return the expression subtree addressed by ``path`` within ``stmt``."""
    if not path:
        raise ValueError("empty expression path")
    slot = path[0]
    node: Optional[Expr] = None
    for name, e in stmt.expr_slots():
        if name == slot:
            node = e
            break
    if node is None:
        raise KeyError(f"statement has no expression slot {slot!r}")
    for edge in path[1:]:
        nxt = None
        for name, child in node.children():
            if name == edge:
                nxt = child
                break
        if nxt is None:
            raise KeyError(f"no child {edge!r} under path prefix")
        node = nxt
    return node


def _clear_expr_spine(stmt: Stmt, path: ExprPath) -> None:
    """Drop cached hashes along ``path`` (exclusive of the final node).

    After a replacement at ``path`` every ancestor of the replaced node —
    the slot root down to the direct parent — holds a stale digest; the
    replaced subtree itself and everything off the spine stay valid.
    """
    stmt._h = None
    try:
        node: Optional[Expr] = None
        for name, e in stmt.expr_slots():
            if name == path[0]:
                node = e
                break
        for edge in path[1:-1] if node is not None else ():
            node._h = None
            nxt = None
            for name, child in node.children():
                if name == edge:
                    nxt = child
                    break
            if nxt is None:
                return
            node = nxt
        if node is not None:
            node._h = None
    except Exception:  # pragma: no cover - invalidation must never raise
        pass


def replace_expr(stmt: Stmt, path: ExprPath, new: Expr) -> Expr:
    """Replace the subtree at ``path`` with ``new``; return the old subtree.

    This is the structural workhorse of the ``Modify`` primitive action.
    Cached content hashes are cleared along the spine of the mutation;
    callers remain responsible for ``Program.touch(sid)`` so *ancestor
    statements* get invalidated too.
    """
    if not path:
        raise ValueError("empty expression path")
    if len(path) == 1:
        old = expr_at(stmt, path)
        stmt.set_expr_slot(path[0], new)
        stmt._h = None
        return old
    parent = expr_at(stmt, path[:-1])
    _clear_expr_spine(stmt, path)
    edge = path[-1]
    if isinstance(parent, BinOp):
        if edge == "l":
            old = parent.left
            parent.left = new
            return old
        if edge == "r":
            old = parent.right
            parent.right = new
            return old
    elif isinstance(parent, UnaryOp):
        if edge == "e":
            old = parent.operand
            parent.operand = new
            return old
    elif isinstance(parent, ArrayRef) and edge.startswith("sub"):
        k = int(edge[3:])
        if 0 <= k < len(parent.subscripts):
            old = parent.subscripts[k]
            parent.subscripts[k] = new
            return old
    raise KeyError(f"cannot replace child {edge!r} of {type(parent).__name__}")


def _stmt_hash(stmt: Stmt, cache: bool) -> str:
    if cache:
        h = stmt._h
        if h is not None:
            return h
    parts = [type(stmt).__name__, str(stmt.sid), repr(stmt.label)]
    if isinstance(stmt, Loop):
        parts.append(stmt.var)
    for name, e in stmt.expr_slots():
        parts.append(name)
        parts.append(_expr_hash(e, cache))
    for slot in stmt.body_slots():
        parts.append(slot)
        for child in stmt.get_body(slot):
            parts.append(_stmt_hash(child, cache))
    h = _hash_text(_HSEP.join(parts))
    if cache:
        stmt._h = h
    return h


def stmt_hash(stmt: Stmt) -> str:
    """Memoized Merkle-style subtree hash of one statement.

    Covers the statement type, sid, label, loop index variable, every
    expression slot and every nested statement, so the digest of a root
    statement commits to its entire subtree.  Recomputing after an edit
    only re-hashes the spine: untouched children return their memoized
    digests.
    """
    return _stmt_hash(stmt, True)


def stmt_hash_fresh(stmt: Stmt) -> str:
    """:func:`stmt_hash` without reading or writing any memoized hash."""
    return _stmt_hash(stmt, False)


# ---------------------------------------------------------------------------
# Program container
# ---------------------------------------------------------------------------

#: sid used to denote the top-level statement list of a program.
ROOT_SID = 0

#: A container reference: (container sid, body-slot name).  The program
#: root is ``(ROOT_SID, "body")``.
ContainerRef = Tuple[int, str]


@dataclass
class StmtInfo:
    """Bookkeeping entry for one registered statement."""

    stmt: Stmt
    #: Container currently holding the statement, or ``None`` if detached.
    parent: Optional[ContainerRef] = None
    #: True while the statement is attached to the live program tree.
    attached: bool = False


class Program:
    """A mutable structured program with stable statement identity.

    All structural changes (insert/detach/move) must go through this class
    so the sid registry and parent map remain consistent.  Detached
    statements remain registered: the undo history may re-attach them.
    """

    def __init__(self) -> None:
        self.body: List[Stmt] = []
        self._infos: Dict[int, StmtInfo] = {}
        self._next_sid = ROOT_SID + 1
        #: bumped on every structural or expression mutation; analyses use
        #: it to detect staleness.
        self.version = 0
        #: highest version ever reached; :meth:`probe` rolls ``version``
        #: back but never re-issues a burned number.
        self._version_hwm = 0

    def _bump_version(self) -> None:
        self._version_hwm = max(self._version_hwm, self.version) + 1
        self.version = self._version_hwm

    @contextmanager
    def probe(self) -> Iterator[None]:
        """Scope for a trial mutation that will be perfectly restored.

        Safety checks sometimes re-insert a deleted statement, ask an
        analysis question, and detach it again — a structural no-op that
        must not make event-patched caches look stale.  The version is
        restored on exit; the versions consumed inside are burned (never
        reused), so caches stamped during the probe can never collide
        with a later program state.
        """
        saved = self.version
        try:
            yield
        finally:
            self._version_hwm = max(self._version_hwm, self.version)
            self.version = saved

    # -- registration --------------------------------------------------------

    def register(self, stmt: Stmt) -> int:
        """Assign a fresh sid to ``stmt`` (and, recursively, its body)."""
        if stmt.sid != -1 and stmt.sid in self._infos and self._infos[stmt.sid].stmt is stmt:
            return stmt.sid
        stmt.sid = self._next_sid
        stmt._h = None  # the subtree hash commits to the sid
        self._next_sid += 1
        self._infos[stmt.sid] = StmtInfo(stmt=stmt)
        for slot in stmt.body_slots():
            for child in stmt.get_body(slot):
                self.register(child)
        return stmt.sid

    def node(self, sid: int) -> Stmt:
        """Return the statement with id ``sid`` (attached or detached)."""
        return self._infos[sid].stmt

    def has_node(self, sid: int) -> bool:
        """Whether ``sid`` is registered (attached or detached)."""
        return sid in self._infos

    def is_attached(self, sid: int) -> bool:
        """Whether ``sid`` is part of the live program tree."""
        return sid in self._infos and self._infos[sid].attached

    def parent_of(self, sid: int) -> Optional[ContainerRef]:
        """Container currently holding ``sid`` (``None`` when detached)."""
        return self._infos[sid].parent

    # -- containers -----------------------------------------------------------

    def container_list(self, ref: ContainerRef) -> List[Stmt]:
        """The mutable statement list behind a container reference."""
        sid, slot = ref
        if sid == ROOT_SID:
            if slot != "body":
                raise KeyError(slot)
            return self.body
        return self.node(sid).get_body(slot)

    def container_alive(self, ref: ContainerRef) -> bool:
        """True when the container is part of the live program tree."""
        sid, _slot = ref
        if sid == ROOT_SID:
            return True
        return self.is_attached(sid)

    def index_in_container(self, sid: int) -> int:
        """Position of ``sid`` within its container; raises when detached."""
        ref = self.parent_of(sid)
        if ref is None:
            raise ValueError(f"statement {sid} is detached")
        lst = self.container_list(ref)
        for i, s in enumerate(lst):
            if s.sid == sid:
                return i
        raise AssertionError(f"corrupt parent map for sid {sid}")

    # -- structural mutation ---------------------------------------------------

    def _mark_attached(self, stmt: Stmt, attached: bool) -> None:
        self._infos[stmt.sid].attached = attached
        for slot in stmt.body_slots():
            for child in stmt.get_body(slot):
                self._infos[child.sid].parent = (stmt.sid, slot)
                self._mark_attached(child, attached)

    def insert(self, ref: ContainerRef, index: int, stmt: Stmt) -> None:
        """Insert ``stmt`` (registered, detached) at ``index`` of ``ref``."""
        if stmt.sid == -1 or stmt.sid not in self._infos:
            self.register(stmt)
        info = self._infos[stmt.sid]
        if info.attached:
            raise ValueError(f"statement {stmt.sid} is already attached")
        if not self.container_alive(ref):
            raise ValueError(f"container {ref} is not part of the live program")
        lst = self.container_list(ref)
        index = max(0, min(index, len(lst)))
        lst.insert(index, stmt)
        info.parent = ref
        self._mark_attached(stmt, True)
        self._invalidate_spine(ref[0])
        self._bump_version()

    def detach(self, sid: int) -> Stmt:
        """Remove ``sid`` from its container; keeps it registered."""
        info = self._infos[sid]
        if not info.attached:
            raise ValueError(f"statement {sid} is already detached")
        ref = info.parent
        assert ref is not None
        lst = self.container_list(ref)
        lst.remove(info.stmt)
        self._invalidate_spine(ref[0])
        info.parent = None
        self._mark_attached(info.stmt, False)
        # a detached statement keeps no parent, but its children keep
        # pointing at it so re-attachment restores the whole subtree.
        info.parent = None
        self._bump_version()
        return info.stmt

    def move_stmt(self, sid: int, ref: ContainerRef, index: int) -> None:
        """Relocate an attached statement to ``(ref, index)``."""
        stmt = self.detach(sid)
        self.insert(ref, index, stmt)

    def _invalidate_spine(self, sid: int) -> None:
        """Clear cached subtree hashes from ``sid`` up to the root."""
        while sid != ROOT_SID:
            info = self._infos.get(sid)
            if info is None:
                return
            info.stmt._h = None
            ref = info.parent
            if ref is None:
                return
            sid = ref[0]

    def touch(self, sid: Optional[int] = None) -> None:
        """Record a non-structural (expression) mutation.

        With ``sid``, only the mutated statement's spine loses its cached
        content hashes; without one (legacy callers that batch several
        in-place swaps), every cached statement hash is dropped.
        """
        if sid is None:
            for info in self._infos.values():
                info.stmt._h = None
        else:
            info = self._infos.get(sid)
            if info is not None:
                info.stmt._h = None
                if info.parent is not None:
                    self._invalidate_spine(info.parent[0])
        self._bump_version()

    # -- traversal ---------------------------------------------------------------

    def walk(self) -> Iterator[Stmt]:
        """Yield every attached statement in source order (preorder)."""
        def go(stmts: List[Stmt]) -> Iterator[Stmt]:
            for s in stmts:
                yield s
                for slot in s.body_slots():
                    yield from go(s.get_body(slot))
        yield from go(self.body)

    def attached_sids(self) -> List[int]:
        """Sids of every attached statement, in source order."""
        return [s.sid for s in self.walk()]

    def enclosing_loops(self, sid: int) -> List[Loop]:
        """Loops containing ``sid``, outermost first."""
        chain: List[Loop] = []
        ref = self.parent_of(sid)
        while ref is not None and ref[0] != ROOT_SID:
            parent = self.node(ref[0])
            if isinstance(parent, Loop):
                chain.append(parent)
            ref = self.parent_of(parent.sid)
        chain.reverse()
        return chain

    def ancestors(self, sid: int) -> List[int]:
        """Sids of enclosing statements, innermost first."""
        out: List[int] = []
        ref = self.parent_of(sid)
        while ref is not None and ref[0] != ROOT_SID:
            out.append(ref[0])
            ref = self.parent_of(ref[0])
        return out

    # -- cloning -------------------------------------------------------------------

    def clone_subtree(self, stmt: Stmt) -> Stmt:
        """Deep-copy ``stmt``; clones are registered with fresh sids."""
        copy = stmt.clone_shallow()
        copy.label = stmt.label
        self.register(copy)
        for slot in stmt.body_slots():
            dst = copy.get_body(slot)
            for child in stmt.get_body(slot):
                cchild = self.clone_subtree(child)
                dst.append(cchild)
                self._infos[cchild.sid].parent = (copy.sid, slot)
        return copy

    def snapshot(self) -> "Program":
        """A fully independent structural copy (fresh sid space)."""
        other = Program()
        for s in self.body:
            cs = _copy_into(other, s)
            other.insert((ROOT_SID, "body"), len(other.body), cs)
        return other


def _copy_into(dst: Program, stmt: Stmt) -> Stmt:
    copy = stmt.clone_shallow()
    copy.label = stmt.label
    dst.register(copy)
    for slot in stmt.body_slots():
        body = copy.get_body(slot)
        for child in stmt.get_body(slot):
            c = _copy_into(dst, child)
            body.append(c)
            dst._infos[c.sid].parent = (copy.sid, slot)
            dst._mark_attached(c, False)
    return copy


def stmts_equal(a: Stmt, b: Stmt) -> bool:
    """Structural equality of statements (ignores sids/labels)."""
    if type(a) is not type(b):
        return False
    if isinstance(a, Assign):
        assert isinstance(b, Assign)
        return exprs_equal(a.target, b.target) and exprs_equal(a.expr, b.expr)
    if isinstance(a, Loop):
        assert isinstance(b, Loop)
        return (a.var == b.var and exprs_equal(a.lower, b.lower)
                and exprs_equal(a.upper, b.upper) and exprs_equal(a.step, b.step)
                and bodies_equal(a.body, b.body))
    if isinstance(a, ParSections):
        assert isinstance(b, ParSections)
        return (len(a.sections) == len(b.sections)
                and all(bodies_equal(x, y)
                        for x, y in zip(a.sections, b.sections)))
    if isinstance(a, IfStmt):
        assert isinstance(b, IfStmt)
        return (exprs_equal(a.cond, b.cond) and bodies_equal(a.then_body, b.then_body)
                and bodies_equal(a.else_body, b.else_body))
    if isinstance(a, ReadStmt):
        assert isinstance(b, ReadStmt)
        return exprs_equal(a.target, b.target)
    if isinstance(a, WriteStmt):
        assert isinstance(b, WriteStmt)
        return exprs_equal(a.expr, b.expr)
    raise TypeError(f"unknown statement node: {a!r}")


def bodies_equal(a: Sequence[Stmt], b: Sequence[Stmt]) -> bool:
    """Structural equality of two statement lists."""
    return len(a) == len(b) and all(stmts_equal(x, y) for x, y in zip(a, b))


def programs_equal(a: Program, b: Program) -> bool:
    """Structural equality of two programs (ignores sids/labels/history)."""
    return bodies_equal(a.body, b.body)


# ---------------------------------------------------------------------------
# Def/use extraction (statement-local; flow analyses build on these)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DefUse:
    """Scalar/array definitions and uses of a single statement.

    Array accesses are tracked at array granularity for scalar dataflow;
    the subscript-precise treatment lives in :mod:`repro.analysis.depend`.
    """

    defs: frozenset  # scalar names defined
    uses: frozenset  # scalar names used
    array_defs: frozenset  # array names stored to
    array_uses: frozenset  # array names loaded from
    is_io: bool = False


def stmt_defuse(stmt: Stmt) -> DefUse:
    """Compute the local def/use sets of one statement (header only for
    loops/ifs: their bodies are separate statements)."""
    if isinstance(stmt, Assign):
        uses = expr_vars(stmt.expr)
        ause = expr_arrays(stmt.expr)
        if isinstance(stmt.target, VarRef):
            return DefUse(frozenset([stmt.target.name]), frozenset(uses),
                          frozenset(), frozenset(ause))
        # array element store: subscripts are uses
        subs_u: Set[str] = set()
        subs_a: Set[str] = set()
        for s in stmt.target.subscripts:
            subs_u |= expr_vars(s)
            subs_a |= expr_arrays(s)
        return DefUse(frozenset(), frozenset(uses | subs_u),
                      frozenset([stmt.target.name]), frozenset(ause | subs_a))
    if isinstance(stmt, Loop):
        u = expr_vars(stmt.lower) | expr_vars(stmt.upper) | expr_vars(stmt.step)
        a = expr_arrays(stmt.lower) | expr_arrays(stmt.upper) | expr_arrays(stmt.step)
        return DefUse(frozenset([stmt.var]), frozenset(u), frozenset(), frozenset(a))
    if isinstance(stmt, ParSections):
        # no header expressions; sections are separate statements
        return DefUse(frozenset(), frozenset(), frozenset(), frozenset())
    if isinstance(stmt, IfStmt):
        return DefUse(frozenset(), frozenset(expr_vars(stmt.cond)),
                      frozenset(), frozenset(expr_arrays(stmt.cond)))
    if isinstance(stmt, ReadStmt):
        if isinstance(stmt.target, VarRef):
            return DefUse(frozenset([stmt.target.name]), frozenset(),
                          frozenset(), frozenset(), is_io=True)
        subs_u = set()
        for s in stmt.target.subscripts:
            subs_u |= expr_vars(s)
        return DefUse(frozenset(), frozenset(subs_u),
                      frozenset([stmt.target.name]), frozenset(), is_io=True)
    if isinstance(stmt, WriteStmt):
        return DefUse(frozenset(), frozenset(expr_vars(stmt.expr)),
                      frozenset(), frozenset(expr_arrays(stmt.expr)), is_io=True)
    raise TypeError(f"unknown statement node: {stmt!r}")
