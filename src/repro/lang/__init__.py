"""A small structured Fortran-like loop language.

This package is the program substrate for the reproduction: the paper's
PIVOT system [5, 6] operated on Fortran programs; we substitute a compact
structured language with ``do`` loops, ``if`` statements, scalar and array
assignments, and simple ``read``/``write`` I/O.  The language supports:

* stable statement identities (needed by the undo machinery, which must
  re-locate statements that were moved, deleted, or copied),
* a lexer/parser/pretty-printer pipeline so examples are legible source
  text, and
* a reference interpreter used by the test-suite to machine-check that
  applying and undoing transformations preserves program semantics.
"""

from repro.lang.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Const,
    Expr,
    IfStmt,
    Loop,
    ParLoop,
    ParSections,
    Program,
    ReadStmt,
    Stmt,
    UnaryOp,
    VarRef,
    WriteStmt,
)
from repro.lang.builder import (
    arr,
    assign,
    binop,
    const,
    doall,
    loop,
    parsections,
    prog,
    var,
)
from repro.lang.interp import ExecutionResult, Interpreter, run_program
from repro.lang.parser import ParseError, parse_program
from repro.lang.printer import format_expr, format_program, format_stmt

__all__ = [
    "ArrayRef",
    "Assign",
    "BinOp",
    "Const",
    "Expr",
    "IfStmt",
    "Loop",
    "ParLoop",
    "ParSections",
    "Program",
    "ReadStmt",
    "Stmt",
    "UnaryOp",
    "VarRef",
    "WriteStmt",
    "arr",
    "assign",
    "binop",
    "const",
    "doall",
    "loop",
    "parsections",
    "prog",
    "var",
    "ExecutionResult",
    "Interpreter",
    "run_program",
    "ParseError",
    "parse_program",
    "format_expr",
    "format_program",
    "format_stmt",
]
