"""Pretty-printer for the loop language.

The printer produces text that the parser accepts back (round-trip safe),
which the test-suite checks property-style.  ``format_program`` can also
show statement labels and the transformation-history annotations that the
paper draws on its Figure 1 representation.
"""

from __future__ import annotations

from typing import List, Optional

from repro.lang.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Const,
    Expr,
    IfStmt,
    Loop,
    ParLoop,
    ParSections,
    Program,
    ReadStmt,
    Stmt,
    UnaryOp,
    VarRef,
    WriteStmt,
)

#: Binding strength used to decide where parentheses are required.
_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "==": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
    "+": 4, "-": 4,
    "*": 5, "/": 5,
}

_UNARY_PREC = 6


def format_expr(e: Expr, parent_prec: int = 0) -> str:
    """Render an expression with minimal parentheses."""
    if isinstance(e, Const):
        v = e.value
        if isinstance(v, float) and v.is_integer():
            return str(int(v))
        return str(v)
    if isinstance(e, VarRef):
        return e.name
    if isinstance(e, ArrayRef):
        subs = ", ".join(format_expr(s) for s in e.subscripts)
        return f"{e.name}({subs})"
    if isinstance(e, BinOp):
        prec = _PRECEDENCE[e.op]
        left = format_expr(e.left, prec)
        # right side binds one tighter so (a - b) - c round-trips
        right = format_expr(e.right, prec + 1)
        s = f"{left} {e.op} {right}"
        if prec < parent_prec:
            return f"({s})"
        return s
    if isinstance(e, UnaryOp):
        inner = format_expr(e.operand, _UNARY_PREC)
        s = f"{e.op} {inner}" if e.op == "not" else f"-{inner}"
        if _UNARY_PREC < parent_prec:
            return f"({s})"
        return s
    raise TypeError(f"unknown expression node: {e!r}")


def format_stmt(s: Stmt, indent: int = 0, show_labels: bool = False) -> str:
    """Render one statement (recursively) as source text."""
    lines = _stmt_lines(s, indent, show_labels)
    return "\n".join(lines)


def _prefix(s: Stmt, show_labels: bool) -> str:
    if show_labels and s.label is not None:
        return f"{s.label:>3}  "
    return ""


def _stmt_lines(s: Stmt, indent: int, show_labels: bool) -> List[str]:
    pad = "  " * indent
    pre = _prefix(s, show_labels)
    if isinstance(s, Assign):
        return [f"{pre}{pad}{format_expr(s.target)} = {format_expr(s.expr)}"]
    # ParLoop subclasses Loop: its branch must come first or a DOALL
    # would silently print as a sequential ``do``
    if isinstance(s, ParLoop):
        hdr = f"{pre}{pad}doall {s.var} = {format_expr(s.lower)}, {format_expr(s.upper)}"
        if not (isinstance(s.step, Const) and s.step.value == 1):
            hdr += f", {format_expr(s.step)}"
        lines = [hdr]
        for c in s.body:
            lines.extend(_stmt_lines(c, indent + 1, show_labels))
        tail_pre = "     " if show_labels else ""
        lines.append(f"{tail_pre}{pad}enddoall")
        return lines
    if isinstance(s, ParSections):
        tail_pre = "     " if show_labels else ""
        lines = [f"{pre}{pad}parbegin"]
        for i, sec in enumerate(s.sections):
            if i:
                lines.append(f"{tail_pre}{pad}section")
            for c in sec:
                lines.extend(_stmt_lines(c, indent + 1, show_labels))
        lines.append(f"{tail_pre}{pad}parend")
        return lines
    if isinstance(s, Loop):
        hdr = f"{pre}{pad}do {s.var} = {format_expr(s.lower)}, {format_expr(s.upper)}"
        if not (isinstance(s.step, Const) and s.step.value == 1):
            hdr += f", {format_expr(s.step)}"
        lines = [hdr]
        for c in s.body:
            lines.extend(_stmt_lines(c, indent + 1, show_labels))
        tail_pre = "     " if show_labels else ""
        lines.append(f"{tail_pre}{pad}enddo")
        return lines
    if isinstance(s, IfStmt):
        lines = [f"{pre}{pad}if ({format_expr(s.cond)}) then"]
        for c in s.then_body:
            lines.extend(_stmt_lines(c, indent + 1, show_labels))
        tail_pre = "     " if show_labels else ""
        if s.else_body:
            lines.append(f"{tail_pre}{pad}else")
            for c in s.else_body:
                lines.extend(_stmt_lines(c, indent + 1, show_labels))
        lines.append(f"{tail_pre}{pad}endif")
        return lines
    if isinstance(s, ReadStmt):
        return [f"{pre}{pad}read {format_expr(s.target)}"]
    if isinstance(s, WriteStmt):
        return [f"{pre}{pad}write {format_expr(s.expr)}"]
    raise TypeError(f"unknown statement node: {s!r}")


def format_program(p: Program, show_labels: bool = False) -> str:
    """Render the whole program as source text."""
    lines: List[str] = []
    for s in p.body:
        lines.extend(_stmt_lines(s, 0, show_labels))
    return "\n".join(lines) + ("\n" if lines else "")
