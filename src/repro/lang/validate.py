"""Structural validation of programs.

The undo engine mutates programs through primitive actions; these checks
catch corrupted structure early (dangling parents, duplicate sids, body
lists disagreeing with the parent map).  The test-suite runs the validator
after every apply/undo step in its property tests.
"""

from __future__ import annotations

from typing import List, Set

from repro.lang.ast_nodes import Program, ROOT_SID, Stmt


class InvalidProgram(AssertionError):
    """Raised when a structural invariant is violated."""


def validate_program(p: Program) -> None:
    """Check all structural invariants of ``p``; raise on violation."""
    seen: Set[int] = set()

    def check_list(stmts: List[Stmt], container) -> None:
        for s in stmts:
            if s.sid == -1:
                raise InvalidProgram("attached statement without sid")
            if s.sid in seen:
                raise InvalidProgram(f"duplicate sid {s.sid} in program tree")
            seen.add(s.sid)
            if not p.has_node(s.sid):
                raise InvalidProgram(f"sid {s.sid} missing from registry")
            if p.node(s.sid) is not s:
                raise InvalidProgram(f"registry maps sid {s.sid} to a different object")
            if not p.is_attached(s.sid):
                raise InvalidProgram(f"sid {s.sid} in tree but marked detached")
            if p.parent_of(s.sid) != container:
                raise InvalidProgram(
                    f"sid {s.sid}: parent map says {p.parent_of(s.sid)}, "
                    f"tree says {container}")
            for slot in s.body_slots():
                check_list(s.get_body(slot), (s.sid, slot))

    check_list(p.body, (ROOT_SID, "body"))

    # every registered-and-attached statement must be reachable
    for sid in p.attached_sids():
        if sid not in seen:
            raise InvalidProgram(f"attached sid {sid} unreachable from root")


def assert_detached_consistent(p: Program, sid: int) -> None:
    """Check that a detached statement's subtree is internally consistent."""
    stmt = p.node(sid)
    if p.is_attached(sid):
        raise InvalidProgram(f"sid {sid} expected detached")

    def check(s: Stmt) -> None:
        for slot in s.body_slots():
            for c in s.get_body(slot):
                if p.parent_of(c.sid) != (s.sid, slot):
                    raise InvalidProgram(
                        f"detached subtree {sid}: child {c.sid} parent broken")
                if p.is_attached(c.sid):
                    raise InvalidProgram(
                        f"detached subtree {sid}: child {c.sid} marked attached")
                check(c)

    check(stmt)
