"""Reference interpreter for the loop language.

The interpreter is the semantic ground truth of the reproduction: the
paper argues its undo technique is *safe* (meaning-preserving); we check
that claim mechanically by executing programs before and after each
apply/undo sequence and comparing their observable behaviour.

Observability
-------------
The observable behaviour of a run is its **output trace** (the sequence
of values produced by ``write`` statements) — matching the paper's
legality rule that a transformation may not "alter the order in which
data is input or output by I/O devices" (§4.2).  Final variable values
are *not* observable by default because legal transformations (e.g. dead
code elimination, strip mining's new index variable) may change them.
Workload programs therefore end with ``write`` statements over their
results, making the trace a faithful fingerprint of the computation.

Determinism and totality
------------------------
* Array subscripts are reduced modulo the array extent, so every access
  is in bounds; the mapping is applied identically to original and
  transformed programs, preserving equivalence checking.
* ``read`` consumes from a cyclic input stream seeded by the caller.
* A global step budget guards against non-terminating loops; exceeding
  it raises :class:`ExecutionLimitExceeded`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.lang.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Const,
    Expr,
    IfStmt,
    Loop,
    ParSections,
    Program,
    ReadStmt,
    Stmt,
    UnaryOp,
    VarRef,
    WriteStmt,
    expr_arrays,
)

Number = Union[int, float]

#: Default extent of every array dimension.
DEFAULT_EXTENT = 32

#: Default cap on executed statements per run.
DEFAULT_MAX_STEPS = 200_000


class ExecutionLimitExceeded(RuntimeError):
    """Raised when a run exceeds its statement budget."""


class UndefinedVariable(RuntimeError):
    """Raised when an expression reads a scalar that was never assigned.

    The interpreter can optionally auto-initialise unknown scalars from the
    seeded environment instead (the default for equivalence testing, since
    transformed programs must see the same initial state).
    """


@dataclass
class ExecutionResult:
    """Outcome of one program run."""

    #: values produced by ``write`` statements, in order.
    output: List[Number]
    #: final scalar environment.
    scalars: Dict[str, Number]
    #: final array contents (copies).
    arrays: Dict[str, np.ndarray]
    #: number of statements executed.
    steps: int

    def trace_equal(self, other: "ExecutionResult") -> bool:
        """True when both runs produced the identical output trace."""
        if len(self.output) != len(other.output):
            return False
        return all(a == b for a, b in zip(self.output, other.output))


def _collect_array_ranks(p: Program) -> Dict[str, int]:
    """Map each array name to its (maximum) subscript arity."""
    ranks: Dict[str, int] = {}
    for s in p.walk():
        for _slot, e in s.expr_slots():
            stack = [e]
            while stack:
                n = stack.pop()
                if isinstance(n, ArrayRef):
                    ranks[n.name] = max(ranks.get(n.name, 0), len(n.subscripts))
                    stack.extend(n.subscripts)
                else:
                    stack.extend(c for _, c in n.children())
    return ranks


class Interpreter:
    """Executes a :class:`Program` against a seeded environment."""

    def __init__(self, program: Program, *, seed: int = 0,
                 extent: int = DEFAULT_EXTENT,
                 max_steps: int = DEFAULT_MAX_STEPS,
                 inputs: Optional[Sequence[Number]] = None,
                 auto_init: bool = True):
        self.program = program
        self.extent = extent
        self.max_steps = max_steps
        self.auto_init = auto_init
        rng = np.random.default_rng(seed)
        # Seeded initial environment.  Scalars default to small integers so
        # integer arithmetic (loop bounds!) behaves; arrays get float data.
        self._rng_scalars: Dict[str, Number] = {}
        self._seed = seed
        self.scalars: Dict[str, Number] = {}
        self.arrays: Dict[str, np.ndarray] = {}
        for name, rank in sorted(_collect_array_ranks(program).items()):
            shape = (extent,) * max(rank, 1)
            self.arrays[name] = np.asarray(
                rng.integers(-50, 50, size=shape), dtype=np.float64)
        if inputs is None:
            inputs = [float(x) for x in rng.integers(-20, 20, size=16)]
        self.inputs: List[Number] = list(inputs) or [0]
        self._input_pos = 0
        self.output: List[Number] = []
        self.steps = 0
        self._scalar_rng = np.random.default_rng(seed + 1)

    # -- environment -------------------------------------------------------

    def _init_scalar(self, name: str) -> Number:
        """Deterministic initial value for a scalar, by name.

        Values are derived from the seed and the name (not from first-read
        order), so the initial environment is identical for the original
        and the transformed program even when reads happen in a different
        order.
        """
        h = 0
        for ch in name:
            h = (h * 131 + ord(ch)) % 1_000_003
        rng = np.random.default_rng(self._seed * 7919 + h)
        return int(rng.integers(1, 10))

    def get_scalar(self, name: str) -> Number:
        """Current value of scalar ``name`` (auto-initialised if new)."""
        if name not in self.scalars:
            if not self.auto_init:
                raise UndefinedVariable(name)
            self.scalars[name] = self._init_scalar(name)
        return self.scalars[name]

    def _index(self, values: Sequence[Number], arr: np.ndarray) -> Tuple[int, ...]:
        idx = []
        for k, v in enumerate(values):
            extent = arr.shape[k] if k < arr.ndim else arr.shape[-1]
            idx.append(int(v) % extent)
        # pad or clip to the array rank
        while len(idx) < arr.ndim:
            idx.append(0)
        return tuple(idx[: arr.ndim])

    def _array(self, name: str, rank: int) -> np.ndarray:
        if name not in self.arrays:
            shape = (self.extent,) * max(rank, 1)
            rng = np.random.default_rng(self._seed * 31 + len(name))
            self.arrays[name] = np.asarray(
                rng.integers(-50, 50, size=shape), dtype=np.float64)
        return self.arrays[name]

    # -- expression evaluation ---------------------------------------------------

    def eval(self, e: Expr) -> Number:
        """Evaluate an expression to a number (booleans are 1/0)."""
        if isinstance(e, Const):
            return e.value
        if isinstance(e, VarRef):
            return self.get_scalar(e.name)
        if isinstance(e, ArrayRef):
            a = self._array(e.name, len(e.subscripts))
            idx = self._index([self.eval(s) for s in e.subscripts], a)
            return float(a[idx])
        if isinstance(e, BinOp):
            l = self.eval(e.left)
            r = self.eval(e.right)
            return _apply_binop(e.op, l, r)
        if isinstance(e, UnaryOp):
            v = self.eval(e.operand)
            if e.op == "-":
                return -v
            if e.op == "not":
                return 0 if v else 1
        raise TypeError(f"unknown expression node: {e!r}")

    # -- statement execution ---------------------------------------------------------

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise ExecutionLimitExceeded(
                f"exceeded {self.max_steps} statements")

    def exec_stmt(self, s: Stmt) -> None:
        """Execute one statement (recursively for compounds)."""
        self._tick()
        if isinstance(s, Assign):
            value = self.eval(s.expr)
            self._store(s.target, value)
            return
        if isinstance(s, Loop):
            lower = self.eval(s.lower)
            upper = self.eval(s.upper)
            step = self.eval(s.step)
            if step == 0:
                raise ExecutionLimitExceeded("zero loop step")
            v = lower
            while (step > 0 and v <= upper) or (step < 0 and v >= upper):
                self.scalars[s.var] = v
                for c in s.body:
                    self.exec_stmt(c)
                v = v + step
            self.scalars[s.var] = v
            return
        if isinstance(s, ParSections):
            # canonical sequential schedule: sections run in source order
            # (the scheduled interpreter in repro.par explores the rest)
            for sec in s.sections:
                for c in sec:
                    self.exec_stmt(c)
            return
        if isinstance(s, IfStmt):
            branch = s.then_body if self.eval(s.cond) else s.else_body
            for c in branch:
                self.exec_stmt(c)
            return
        if isinstance(s, ReadStmt):
            value = self.inputs[self._input_pos % len(self.inputs)]
            self._input_pos += 1
            self._store(s.target, value)
            return
        if isinstance(s, WriteStmt):
            self.output.append(self.eval(s.expr))
            return
        raise TypeError(f"unknown statement node: {s!r}")

    def _store(self, target: Expr, value: Number) -> None:
        if isinstance(target, VarRef):
            self.scalars[target.name] = value
        elif isinstance(target, ArrayRef):
            a = self._array(target.name, len(target.subscripts))
            idx = self._index([self.eval(sub) for sub in target.subscripts], a)
            a[idx] = value
        else:
            raise TypeError("invalid assignment target")

    def run(self) -> ExecutionResult:
        """Execute the whole program and return the result."""
        for s in self.program.body:
            self.exec_stmt(s)
        return ExecutionResult(
            output=list(self.output),
            scalars=dict(self.scalars),
            arrays={k: v.copy() for k, v in self.arrays.items()},
            steps=self.steps,
        )


def _apply_binop(op: str, l: Number, r: Number) -> Number:
    if op == "+":
        return l + r
    if op == "-":
        return l - r
    if op == "*":
        return l * r
    if op == "/":
        if r == 0:
            return 0  # total semantics: division by zero yields 0
        return l / r
    if op == "<":
        return 1 if l < r else 0
    if op == "<=":
        return 1 if l <= r else 0
    if op == ">":
        return 1 if l > r else 0
    if op == ">=":
        return 1 if l >= r else 0
    if op == "==":
        return 1 if l == r else 0
    if op == "!=":
        return 1 if l != r else 0
    if op == "and":
        return 1 if (l and r) else 0
    if op == "or":
        return 1 if (l or r) else 0
    raise ValueError(f"unknown operator {op!r}")


def fold_binop(op: str, l: Number, r: Number) -> Number:
    """Compile-time evaluation used by constant folding.

    Delegates to the interpreter's operator semantics so that folding a
    subexpression can never change a program's observable behaviour.
    """
    return _apply_binop(op, l, r)


def run_program(p: Program, *, seed: int = 0, extent: int = DEFAULT_EXTENT,
                max_steps: int = DEFAULT_MAX_STEPS,
                inputs: Optional[Sequence[Number]] = None) -> ExecutionResult:
    """Run ``p`` once with a fresh seeded environment."""
    return Interpreter(p, seed=seed, extent=extent, max_steps=max_steps,
                       inputs=inputs).run()


def traces_equivalent(p1: Program, p2: Program, *, trials: int = 3,
                      seed: int = 0, extent: int = DEFAULT_EXTENT,
                      max_steps: int = DEFAULT_MAX_STEPS) -> bool:
    """Check observable (output-trace) equivalence over several seeds.

    Returns ``True`` when every trial produced identical traces.  A trial
    where *both* runs exceed the step budget is skipped (unknown), while
    one-sided budget overruns count as inequivalent.
    """
    for t in range(trials):
        s = seed + 1009 * t
        try:
            r1 = run_program(p1, seed=s, extent=extent, max_steps=max_steps)
        except ExecutionLimitExceeded:
            try:
                run_program(p2, seed=s, extent=extent, max_steps=max_steps)
            except ExecutionLimitExceeded:
                continue
            return False
        try:
            r2 = run_program(p2, seed=s, extent=extent, max_steps=max_steps)
        except ExecutionLimitExceeded:
            return False
        if not r1.trace_equal(r2):
            return False
    return True
