"""Tokenizer for the loop language.

A hand-written single-pass scanner: the language is tiny, and keeping the
lexer dependency-free makes the whole substrate self-contained.  Tokens
carry line/column positions so parse errors point at the offending source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

KEYWORDS = frozenset({
    "do", "enddo", "if", "then", "else", "endif", "read", "write",
    "and", "or", "not",
    # parallel constructs (docs/PARALLEL.md)
    "doall", "enddoall", "parbegin", "parend", "section",
})

#: Multi-character operators, longest first so the scanner is greedy.
_OPERATORS = ("<=", ">=", "==", "!=", "+", "-", "*", "/", "<", ">", "=", "(", ")", ",")


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str  # 'num' | 'ident' | 'kw' | 'op' | 'newline' | 'eof'
    text: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.col})"


class LexError(ValueError):
    """Raised on an unrecognised character."""

    def __init__(self, message: str, line: int, col: int):
        super().__init__(f"{message} at line {line}, column {col}")
        self.line = line
        self.col = col


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``; the result always ends with an ``eof`` token."""
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    line = 1
    col = 1
    i = 0
    n = len(source)
    emitted_on_line = False
    while i < n:
        ch = source[i]
        if ch == "\n":
            if emitted_on_line:
                yield Token("newline", "\n", line, col)
            emitted_on_line = False
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "!" and i + 1 < n and source[i + 1] != "=":
            # comment to end of line (Fortran style)
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch == "#":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            seen_dot = False
            while i < n and (source[i].isdigit() or (source[i] == "." and not seen_dot)):
                if source[i] == ".":
                    # don't swallow a dot not followed by a digit
                    if i + 1 >= n or not source[i + 1].isdigit():
                        break
                    seen_dot = True
                i += 1
            text = source[start:i]
            yield Token("num", text, line, col)
            col += i - start
            emitted_on_line = True
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "kw" if text in KEYWORDS else "ident"
            yield Token(kind, text, line, col)
            col += i - start
            emitted_on_line = True
            continue
        matched = False
        for op in _OPERATORS:
            if source.startswith(op, i):
                yield Token("op", op, line, col)
                i += len(op)
                col += len(op)
                emitted_on_line = True
                matched = True
                break
        if matched:
            continue
        raise LexError(f"unexpected character {ch!r}", line, col)
    if emitted_on_line:
        yield Token("newline", "\n", line, col)
    yield Token("eof", "", line, col)
