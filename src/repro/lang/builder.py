"""Convenience constructors for building programs programmatically.

Tests and workload generators use these helpers instead of spelling out
AST constructors.  ``prog`` registers the statement tree with a fresh
:class:`~repro.lang.ast_nodes.Program` and attaches it, assigning sids
and labels in source order.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.lang.ast_nodes import (
    ROOT_SID,
    ArrayRef,
    Assign,
    BinOp,
    Const,
    Expr,
    IfStmt,
    Loop,
    ParLoop,
    ParSections,
    Program,
    ReadStmt,
    Stmt,
    UnaryOp,
    VarRef,
    WriteStmt,
    intern_const,
    intern_var,
)

Exprish = Union[Expr, int, float, str]


def _expr(x: Exprish) -> Expr:
    """Coerce ints/floats to constants and strings to variable refs."""
    if isinstance(x, Expr):
        return x
    if isinstance(x, (int, float)):
        return intern_const(x)
    if isinstance(x, str):
        return intern_var(x)
    raise TypeError(f"cannot coerce {x!r} to an expression")


def const(v: Union[int, float]) -> Const:
    """A numeric literal (interned: equal literals share one node)."""
    return intern_const(v)


def var(name: str) -> VarRef:
    """A scalar variable reference (interned)."""
    return intern_var(name)


def arr(name: str, *subscripts: Exprish) -> ArrayRef:
    """An array reference ``name(sub1, ...)``."""
    return ArrayRef(name, [_expr(s) for s in subscripts])


def binop(op: str, left: Exprish, right: Exprish) -> BinOp:
    """A binary operation."""
    return BinOp(op, _expr(left), _expr(right))


def add(a: Exprish, b: Exprish) -> BinOp:
    """``a + b``."""
    return BinOp("+", _expr(a), _expr(b))


def sub(a: Exprish, b: Exprish) -> BinOp:
    """``a - b``."""
    return BinOp("-", _expr(a), _expr(b))


def mul(a: Exprish, b: Exprish) -> BinOp:
    """``a * b``."""
    return BinOp("*", _expr(a), _expr(b))


def neg(a: Exprish) -> UnaryOp:
    """``-a``."""
    return UnaryOp("-", _expr(a))


def assign(target: Union[VarRef, ArrayRef, str], expr: Exprish) -> Assign:
    """An assignment statement; a string target becomes a scalar."""
    t = intern_var(target) if isinstance(target, str) else target
    return Assign(t, _expr(expr))


def loop(index: str, lower: Exprish, upper: Exprish,
         body: Sequence[Stmt], step: Optional[Exprish] = None) -> Loop:
    """A counted ``do`` loop."""
    return Loop(index, _expr(lower), _expr(upper),
                _expr(step) if step is not None else None, list(body))


def doall(index: str, lower: Exprish, upper: Exprish,
          body: Sequence[Stmt], step: Optional[Exprish] = None) -> ParLoop:
    """A ``doall`` parallel loop."""
    return ParLoop(index, _expr(lower), _expr(upper),
                   _expr(step) if step is not None else None, list(body))


def parsections(*sections: Sequence[Stmt]) -> ParSections:
    """A ``parbegin`` … ``parend`` block, one argument per section."""
    return ParSections([list(sec) for sec in sections])


def if_(cond: Exprish, then_body: Sequence[Stmt],
        else_body: Sequence[Stmt] = ()) -> IfStmt:
    """An ``if`` statement."""
    return IfStmt(_expr(cond), list(then_body), list(else_body))


def read(target: Union[VarRef, ArrayRef, str]) -> ReadStmt:
    """A ``read`` statement."""
    t = intern_var(target) if isinstance(target, str) else target
    return ReadStmt(t)


def write(expr: Exprish) -> WriteStmt:
    """A ``write`` statement."""
    return WriteStmt(_expr(expr))


def prog(*stmts: Stmt) -> Program:
    """Build a :class:`Program` from top-level statements and label it."""
    p = Program()
    for s in stmts:
        p.register(s)
        p.insert((ROOT_SID, "body"), len(p.body), s)
    relabel(p)
    return p


def relabel(p: Program) -> None:
    """Assign 1-based source-order labels to all attached statements."""
    changed = False
    for i, s in enumerate(p.walk(), start=1):
        if s.label != i:
            s.label = i
            changed = True
    if changed:
        # subtree hashes commit to labels, and every ancestor of a
        # relabelled statement holds a stale digest — drop them all
        for s in p.walk():
            s._h = None
