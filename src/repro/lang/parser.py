"""Recursive-descent parser for the loop language.

Grammar (newline-terminated statements)::

    program   := stmt*
    stmt      := assign | doloop | doall | parsec | ifstmt | readstmt | writestmt
    assign    := ref '=' expr NL
    doloop    := 'do' IDENT '=' expr ',' expr (',' expr)? NL stmt* 'enddo' NL
    doall     := 'doall' IDENT '=' expr ',' expr (',' expr)? NL stmt* 'enddoall' NL
    parsec    := 'parbegin' NL stmt* ('section' NL stmt*)* 'parend' NL
    ifstmt    := 'if' '(' expr ')' 'then' NL stmt* ('else' NL stmt*)? 'endif' NL
    readstmt  := 'read' ref NL
    writestmt := 'write' expr NL
    ref       := IDENT | IDENT '(' expr (',' expr)* ')'
    expr      := standard precedence-climbing arithmetic / comparison / logic

The parser builds a fully registered :class:`~repro.lang.ast_nodes.Program`
with source-order labels, matching what :func:`repro.lang.builder.prog`
produces.
"""

from __future__ import annotations

from typing import List, Optional

from repro.lang.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Const,
    Expr,
    IfStmt,
    Loop,
    ParLoop,
    ParSections,
    Program,
    ReadStmt,
    Stmt,
    UnaryOp,
    VarRef,
    WriteStmt,
)
from repro.lang.builder import prog as _mkprog
from repro.lang.lexer import Token, tokenize


class ParseError(ValueError):
    """Raised when the source does not conform to the grammar."""

    def __init__(self, message: str, tok: Token):
        super().__init__(f"{message} at line {tok.line}, column {tok.col} (got {tok.text!r})")
        self.token = tok


#: precedence-climbing table; higher binds tighter
_BIN_PREC = {
    "or": 1,
    "and": 2,
    "==": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
    "+": 4, "-": 4,
    "*": 5, "/": 5,
}


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.toks = tokens
        self.pos = 0

    # -- token helpers ------------------------------------------------------

    def peek(self) -> Token:
        return self.toks[self.pos]

    def next(self) -> Token:
        t = self.toks[self.pos]
        if t.kind != "eof":
            self.pos += 1
        return t

    def at(self, kind: str, text: Optional[str] = None) -> bool:
        t = self.peek()
        return t.kind == kind and (text is None or t.text == text)

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self.at(kind, text):
            want = text if text is not None else kind
            raise ParseError(f"expected {want!r}", self.peek())
        return self.next()

    def skip_newlines(self) -> None:
        while self.at("newline"):
            self.next()

    def end_of_stmt(self) -> None:
        if self.at("eof"):
            return
        self.expect("newline")
        self.skip_newlines()

    # -- expressions ----------------------------------------------------------

    def parse_expr(self, min_prec: int = 1) -> Expr:
        left = self.parse_unary()
        while True:
            t = self.peek()
            op = t.text
            if (t.kind == "op" or t.kind == "kw") and op in _BIN_PREC and _BIN_PREC[op] >= min_prec:
                self.next()
                right = self.parse_expr(_BIN_PREC[op] + 1)
                left = BinOp(op, left, right)
            else:
                return left

    def parse_unary(self) -> Expr:
        if self.at("op", "-"):
            self.next()
            inner = self.parse_unary()
            # canonical form: negative literals are constants, so the
            # printer/parser pair round-trips (``-1`` ↔ ``Const(-1)``).
            if isinstance(inner, Const):
                return Const(-inner.value)
            return UnaryOp("-", inner)
        if self.at("kw", "not"):
            self.next()
            return UnaryOp("not", self.parse_unary())
        return self.parse_atom()

    def parse_atom(self) -> Expr:
        t = self.peek()
        if t.kind == "num":
            self.next()
            if "." in t.text:
                return Const(float(t.text))
            return Const(int(t.text))
        if t.kind == "ident":
            return self.parse_ref()
        if self.at("op", "("):
            self.next()
            e = self.parse_expr()
            self.expect("op", ")")
            return e
        raise ParseError("expected an expression", t)

    def parse_ref(self) -> Expr:
        name = self.expect("ident").text
        if self.at("op", "("):
            self.next()
            subs = [self.parse_expr()]
            while self.at("op", ","):
                self.next()
                subs.append(self.parse_expr())
            self.expect("op", ")")
            return ArrayRef(name, subs)
        return VarRef(name)

    # -- statements ---------------------------------------------------------------

    def parse_stmt(self) -> Stmt:
        if self.at("kw", "do"):
            return self.parse_do()
        if self.at("kw", "doall"):
            return self.parse_doall()
        if self.at("kw", "parbegin"):
            return self.parse_parsections()
        if self.at("kw", "if"):
            return self.parse_if()
        if self.at("kw", "read"):
            self.next()
            target = self.parse_ref()
            self.end_of_stmt()
            if not isinstance(target, (VarRef, ArrayRef)):
                raise ParseError("read target must be a reference", self.peek())
            return ReadStmt(target)
        if self.at("kw", "write"):
            self.next()
            e = self.parse_expr()
            self.end_of_stmt()
            return WriteStmt(e)
        if self.at("ident"):
            target = self.parse_ref()
            self.expect("op", "=")
            e = self.parse_expr()
            self.end_of_stmt()
            return Assign(target, e)
        raise ParseError("expected a statement", self.peek())

    def parse_do(self) -> Loop:
        self.expect("kw", "do")
        var = self.expect("ident").text
        self.expect("op", "=")
        lower = self.parse_expr()
        self.expect("op", ",")
        upper = self.parse_expr()
        step: Optional[Expr] = None
        if self.at("op", ","):
            self.next()
            step = self.parse_expr()
        self.end_of_stmt()
        body = self.parse_block(("enddo",))
        self.expect("kw", "enddo")
        self.end_of_stmt()
        return Loop(var, lower, upper, step, body)

    def parse_doall(self) -> ParLoop:
        self.expect("kw", "doall")
        var = self.expect("ident").text
        self.expect("op", "=")
        lower = self.parse_expr()
        self.expect("op", ",")
        upper = self.parse_expr()
        step: Optional[Expr] = None
        if self.at("op", ","):
            self.next()
            step = self.parse_expr()
        self.end_of_stmt()
        body = self.parse_block(("enddoall",))
        self.expect("kw", "enddoall")
        self.end_of_stmt()
        return ParLoop(var, lower, upper, step, body)

    def parse_parsections(self) -> ParSections:
        self.expect("kw", "parbegin")
        self.end_of_stmt()
        sections = [self.parse_block(("section", "parend"))]
        while self.at("kw", "section"):
            self.next()
            self.end_of_stmt()
            sections.append(self.parse_block(("section", "parend")))
        self.expect("kw", "parend")
        self.end_of_stmt()
        return ParSections(sections)

    def parse_if(self) -> IfStmt:
        self.expect("kw", "if")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        self.expect("kw", "then")
        self.end_of_stmt()
        then_body = self.parse_block(("else", "endif"))
        else_body: List[Stmt] = []
        if self.at("kw", "else"):
            self.next()
            self.end_of_stmt()
            else_body = self.parse_block(("endif",))
        self.expect("kw", "endif")
        self.end_of_stmt()
        return IfStmt(cond, then_body, else_body)

    def parse_block(self, terminators) -> List[Stmt]:
        out: List[Stmt] = []
        self.skip_newlines()
        while not self.at("eof") and not any(self.at("kw", t) for t in terminators):
            out.append(self.parse_stmt())
            self.skip_newlines()
        return out

    def parse_program(self) -> List[Stmt]:
        self.skip_newlines()
        out: List[Stmt] = []
        while not self.at("eof"):
            out.append(self.parse_stmt())
            self.skip_newlines()
        return out


def parse_program(source: str) -> Program:
    """Parse ``source`` into a registered, labelled :class:`Program`."""
    tokens = tokenize(source)
    stmts = _Parser(tokens).parse_program()
    return _mkprog(*stmts)


def parse_expr(source: str) -> Expr:
    """Parse a single expression (testing convenience)."""
    tokens = tokenize(source)
    p = _Parser(tokens)
    e = p.parse_expr()
    p.skip_newlines()
    if not p.at("eof"):
        raise ParseError("trailing input after expression", p.peek())
    return e
