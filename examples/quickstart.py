"""Quickstart: apply transformations, inspect history, undo out of order.

Run:  python examples/quickstart.py
"""

from repro import TransformationEngine, parse_program, traces_equivalent

SOURCE = """\
c = 1
x = c + 2
d = e + f
do i = 1, 8
  R(i) = e + f
enddo
write x
write d
write R(3)
"""


def main() -> None:
    program = parse_program(SOURCE)
    pristine = parse_program(SOURCE)
    engine = TransformationEngine(program)

    print("=== original program ===")
    print(engine.source(show_labels=True))

    # 1. survey what the catalog can do here
    print("=== opportunities ===")
    for name, opps in engine.find_all().items():
        for opp in opps:
            print(f"  {name}: {opp.description}")

    # 2. apply three transformations
    ctp = engine.apply(engine.find("ctp")[0])     # x = 1 + 2
    cfo = engine.apply(engine.find("cfo")[0])     # x = 3
    cse = engine.apply(engine.find("cse")[0])     # R(i) = d
    print("\n=== after ctp, cfo, cse ===")
    print(engine.source(show_labels=True))
    print("history:")
    print(engine.history.describe())
    assert traces_equivalent(pristine, program)

    # 3. undo in an INDEPENDENT order: the paper's contribution.
    #    cse was applied last, but we undo ctp (applied first).  The
    #    engine discovers that cfo folded on top of ctp's constant — an
    #    affecting transformation — and peels it automatically.
    report = engine.undo(ctp.stamp)
    print("\n=== undo(ctp) ===")
    print(f"undone stamps : {report.undone}")
    print(f"affecting     : {report.affecting}   (cfo had to go first)")
    print(f"affected      : {report.affected}")
    print(engine.source(show_labels=True))

    # 4. the cse survives, still safe, still reversible
    assert engine.history.by_stamp(cse.stamp).active
    assert engine.check_safety(cse.stamp).safe
    assert engine.check_reversibility(cse.stamp).reversible
    assert traces_equivalent(pristine, program)

    # 5. undo the rest and verify exact restoration
    engine.undo(cse.stamp)
    print("=== after undoing everything ===")
    print(engine.source())
    from repro.lang.ast_nodes import programs_equal

    assert programs_equal(pristine, program)
    print("program restored exactly; all checks passed")


if __name__ == "__main__":
    main()
