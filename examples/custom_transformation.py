"""Defining a NEW transformation as a specification — the paper's next step.

The paper closes: "Another step will be to investigate techniques to
automatically generate code for the detection of the disabling actions
of the safety and reversibility conditions of transformations from the
transformation specifications."

This session defines **loop reversal** purely declaratively — five
preconditions and one action template, no checking code — registers it,
and shows the generated transformation participating fully in the
independent-order undo machinery alongside the built-in catalog.

Run:  python examples/custom_transformation.py
"""

from repro import TransformationEngine, parse_program, traces_equivalent
from repro.core.locations import Location
from repro.edit.edits import EditSession
from repro.lang.ast_nodes import programs_equal
from repro.lang.builder import arr, assign, binop
from repro.spec import LRV_SPEC, compile_spec

KERNEL = """\
c = 2
do i = 1, 8
  A(i) = B(i) * c
enddo
write A(3)
write A(7)
"""


def main() -> None:
    # compile the spec; it is registered on the engine below
    lrv = compile_spec(LRV_SPEC)

    print("=== generated Table 2 row ===")
    for k, v in lrv.table2_row().items():
        print(f"  {k}: {v}")
    print("=== generated Table 3 row (disabling conditions) ===")
    row3 = lrv.table3_row()
    for cond in row3["safety"]:
        print(f"  safety: {cond}")
    for cond in row3["reversibility"]:
        print(f"  reversibility: {cond}")

    program = parse_program(KERNEL)
    pristine = parse_program(KERNEL)
    engine = TransformationEngine(program, extra_transformations=[lrv])

    ctp = engine.apply(engine.find("ctp")[0])     # A(i) = B(i) * 2
    rev = engine.apply(engine.find("lrv")[0])     # do i = 8, 1, -1
    dce = engine.apply(engine.find("dce")[0])     # c = 2 is dead now
    print("\n=== after ctp, lrv (spec-defined!), dce ===")
    print(engine.source(show_labels=True))
    assert traces_equivalent(pristine, program)

    # the generated safety check works on the pre-image: the reversed
    # header does not trip the unit-step precondition
    assert engine.check_safety(rev.stamp).safe

    # an edit introducing a recurrence genuinely invalidates the reversal
    loop = next(s for s in program.walk()
                if type(s).__name__ == "Loop")
    EditSession(engine).add_stmt(
        assign(arr("A", "i"), binop("+", arr("A", binop("-", "i", 1)), 1)),
        Location.at(program, (loop.sid, "body"), 1))
    result = engine.check_safety(rev.stamp)
    print(f"\nafter a recurrence edit, lrv safety: {result.safe} "
          f"({result.reasons[0] if result.reasons else ''})")
    assert not result.safe

    # remove the recurrence again, then undo out of order: undoing the
    # ctp ripples to the dce (Table 4), the spec-defined reversal stays
    EditSession(engine).delete_stmt(loop.body[1].sid)
    report = engine.undo(ctp.stamp)
    print(f"\nundo(ctp): undone = {report.undone} (dce rippled), "
          f"lrv still active = "
          f"{engine.history.by_stamp(rev.stamp).active}")
    engine.undo(rev.stamp)
    assert programs_equal(pristine, program)
    print("\noriginal program restored exactly — the generated "
          "transformation is a first-class undo citizen")


if __name__ == "__main__":
    main()
