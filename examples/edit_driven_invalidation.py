"""Edit-driven invalidation: remove only the transformations an edit broke.

The paper (§1): "When a program is modified by edits, the safety
conditions of a transformation can be altered ... This kind of
transformation is defined to be unsafe and needs to be removed.
However, all other transformations may be unaffected and should remain
in the code."

This session applies four transformations, performs two user edits, and
shows that only the genuinely invalidated transformations are removed —
versus the redo-everything baseline which would discard all four.

Run:  python examples/edit_driven_invalidation.py
"""

from repro import TransformationEngine, parse_program
from repro.core.locations import Location
from repro.edit.edits import EditSession
from repro.edit.invalidate import find_unsafe, redo_all_baseline, remove_unsafe
from repro.lang.ast_nodes import Const
from repro.lang.builder import assign

SOURCE = """\
c = 1
x = c + 2
a = b + q
d = b + q
do i = 1, 8
  g = 7
  A(i) = B(i) * g
enddo
write x
write a + d
write A(3)
"""


def stmt_by_label(p, label):
    for s in p.walk():
        if s.label == label:
            return s
    raise KeyError(label)


def main() -> None:
    program = parse_program(SOURCE)
    engine = TransformationEngine(program)

    ctp = engine.apply_first("ctp", var="c")    # x = 1 + 2
    cse = engine.apply(engine.find("cse")[0])   # d = a
    icm = engine.apply(engine.find("icm")[0])   # hoist g = 7
    cfo = engine.apply(engine.find("cfo")[0])   # x = 3
    print("=== optimized program (4 transformations) ===")
    print(engine.source(show_labels=True))

    edits = EditSession(engine)

    # edit 1: harmless — add an unrelated statement at the top
    rep1 = edits.add_stmt(assign("unrelated", 0),
                          Location.at(program, (0, "body"), 0))
    stats1 = remove_unsafe(engine, rep1)
    print(f"\nedit 1 (unrelated add): candidates={stats1.candidates}, "
          f"checks={stats1.safety_checks} "
          f"(regional filter skipped {stats1.region_skips}), "
          f"removed={stats1.removed}")
    assert not stats1.removed

    # edit 2: change the constant definition c = 1 → c = 5.
    # This invalidates the CTP (and transitively the CFO stacked on it);
    # the CSE and ICM remain in the code.  (Labels are assigned at parse
    # time, so "c = 1" is still label 1 even after the insertion above.)
    c_def = stmt_by_label(program, 1)
    rep2 = edits.modify_expr(c_def.sid, ("expr",), Const(5))
    stats2 = find_unsafe(engine, rep2)
    print(f"\nedit 2 (c = 1 → c = 5): unsafe stamps = {stats2.unsafe}")
    stats2 = remove_unsafe(engine, rep2, stats2)
    print(f"removed (incl. cascades) = {stats2.removed}")
    print("\n=== program after incremental invalidation ===")
    print(engine.source(show_labels=True))

    survivors = [r.name for r in engine.history.active()]
    print(f"surviving transformations: {survivors}")
    assert "cse" in survivors and "icm" in survivors
    assert "ctp" not in survivors

    # compare with the non-incremental world
    baseline = redo_all_baseline(engine)
    print(f"\nredo-all baseline would discard "
          f"{baseline.transformations_discarded} transformations and "
          f"re-derive everything "
          f"(~{baseline.safety_checks_equiv} opportunity analyses)")
    print("incremental path re-checked only the affected region — done")


if __name__ == "__main__":
    main()
