"""The paper's Figure 1 / Section 5.2 example, end to end.

Reproduces the exact scenario of the paper: the program segment is
restructured by CSE, CTP, INX and ICM (in that order); the two-level
representation (APDG + ADAG) is rendered with its history annotations;
and undoing the loop interchange forces the invariant code motion to be
undone first because ICM's ``mv_4`` broke INX's "tight loops" post
pattern.

Run:  python examples/figure1_walkthrough.py
"""

from repro import TransformationEngine, traces_equivalent
from repro.lang.ast_nodes import programs_equal
from repro.repr2 import TwoLevelRepresentation
from repro.workloads.kernels import figure1_program


def main() -> None:
    program = figure1_program(scale=10)    # reduced bounds: fast interp
    pristine = figure1_program(scale=10)
    engine = TransformationEngine(program)

    print("=== Figure 1: source program ===")
    print(engine.source(show_labels=True))

    # the paper's application order: cse(1), ctp(2), inx(3), icm(4)
    cse = engine.apply(engine.find("cse")[0])
    ctp = engine.apply(engine.find("ctp")[0])
    inx = engine.apply(engine.find("inx")[0])
    icm_opps = engine.find("icm")
    assert icm_opps, "interchange should have enabled the hoist (Table 4)"
    icm = engine.apply(icm_opps[0])

    print("=== Figure 1: restructured program ===")
    print(engine.source(show_labels=True))
    assert traces_equivalent(pristine, program)

    print("=== Figure 1: two-level representation with annotations ===")
    print(TwoLevelRepresentation.of(engine).render())

    # Section 5.2: reversibility before any undo
    print("\n=== Section 5.2: immediate reversibility ===")
    for rec in (cse, ctp, inx, icm):
        rr = engine.check_reversibility(rec.stamp)
        status = "immediately reversible" if rr.reversible else \
            f"BLOCKED: {rr.violations[0].condition}"
        print(f"  t{rec.stamp} {rec.name}: {status}")

    # undo INX: the engine must peel ICM (mv_4) first
    print("\n=== undo(inx) ===")
    report = engine.undo(inx.stamp)
    print(f"undone    : {report.undone}")
    print(f"affecting : {report.affecting}  (icm undone first, as in §5.2)")
    print(engine.source(show_labels=True))
    assert report.affecting == [icm.stamp]
    assert traces_equivalent(pristine, program)

    # cse and ctp are untouched and still deletable as pure annotations
    engine.undo(ctp.stamp)
    engine.undo(cse.stamp)
    assert programs_equal(pristine, program)
    print("original program restored exactly — §5.2 reproduced")


if __name__ == "__main__":
    main()
