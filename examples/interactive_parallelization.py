"""An interactive-parallelization session in the spirit of PIVOT [5].

The paper's motivation (§1): a transformation "does not always guarantee
a time or space benefit", so an interactive user tries alternatives and
*undoes the unpromising ones*.  This script plays that user:

1. estimate the parallelism profile of a kernel with the static cost
   model;
2. greedily try every transformation the catalog offers;
3. keep a transformation only if it improves the estimated parallel
   time; otherwise undo it **immediately and independently** of
   everything applied since (the facility prior LIFO-undo systems
   could not offer);
4. report the kept set and the final speedup estimate.

Run:  python examples/interactive_parallelization.py
"""

from repro import TransformationEngine, parse_program, traces_equivalent
from repro.model.costmodel import estimate_cost
from repro.transforms.fis import LoopFission

KERNEL = """\
n = 16
c = 2
do i = 1, 16
  do j = 1, 8
    T(i, j) = U(i, j) * c
  enddo
enddo
do i = 2, 16
  W(i) = W(i - 1) + T(i, 1)
  S(i) = T(i, 1) + T(i, 2)
enddo
do i = 1, 16
  V(i) = S(i) * c
enddo
write S(3)
write V(5)
write W(9)
write T(2, 2)
"""


def main() -> None:
    program = parse_program(KERNEL)
    pristine = parse_program(KERNEL)
    # loop fission (an extension transformation, see repro.transforms.fis)
    # joins the catalog: it can peel the recurrence off the mixed loop.
    engine = TransformationEngine(program,
                                  extra_transformations=[LoopFission()])

    base = estimate_cost(program)
    print(f"baseline: {base.total_ops:.0f} ops, "
          f"parallel fraction {base.parallel_fraction:.2f}, "
          f"est. speedup {base.speedup:.2f}x")

    kept, discarded = [], []
    best_time = estimate_cost(program).parallel_time

    # try transformations in rounds until nothing improves
    improved = True
    rounds = 0
    while improved and rounds < 10:
        improved = False
        rounds += 1
        for name in ("fis", "fus", "inx", "icm", "ctp", "cpp", "cse",
                     "cfo", "dce", "smi"):
            for opp in engine.find(name):
                rec = engine.apply(opp)
                est = estimate_cost(program)
                if est.parallel_time < best_time - 1e-9:
                    best_time = est.parallel_time
                    kept.append((rec.stamp, name, opp.description))
                    print(f"  KEEP  t{rec.stamp} {name}: {opp.description} "
                          f"(time → {est.parallel_time:.0f})")
                    improved = True
                else:
                    # not beneficial: undo it right now, independent of
                    # anything applied after the transformations we kept
                    report = engine.undo(rec.stamp)
                    discarded.append((rec.stamp, name))
                    extra = ""
                    if len(report.undone) > 1:
                        extra = f" (cascade: {report.undone})"
                    print(f"  DROP  t{rec.stamp} {name}: {opp.description}"
                          f"{extra}")
                break  # re-scan after every attempt

    final = estimate_cost(program)
    print("\n=== final program ===")
    print(engine.source())
    print(f"kept {len(kept)} transformations, "
          f"discarded {len(discarded)}")
    print(f"final: est. speedup {final.speedup:.2f}x "
          f"(baseline {base.speedup:.2f}x)")
    assert traces_equivalent(pristine, program), "semantics must survive"
    print("semantic equivalence with the original: verified")


if __name__ == "__main__":
    main()
